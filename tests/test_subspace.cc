#include "subspace/subspace.h"

#include <gtest/gtest.h>

#include <unordered_set>
#include <vector>

namespace subex {
namespace {

TEST(SubspaceTest, DefaultIsEmpty) {
  Subspace s;
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.size(), 0u);
}

TEST(SubspaceTest, CanonicalizesSortsAndDedups) {
  Subspace s({5, 1, 3, 1, 5});
  EXPECT_EQ(s.features(), (std::vector<FeatureId>{1, 3, 5}));
  EXPECT_EQ(s.size(), 3u);
}

TEST(SubspaceTest, EqualityIgnoresConstructionOrder) {
  EXPECT_EQ(Subspace({2, 0, 1}), Subspace({0, 1, 2}));
  EXPECT_FALSE(Subspace({0, 1}) == Subspace({0, 2}));
}

TEST(SubspaceTest, Contains) {
  Subspace s({1, 4, 7});
  EXPECT_TRUE(s.Contains(4));
  EXPECT_FALSE(s.Contains(2));
}

TEST(SubspaceTest, ContainsAll) {
  Subspace s({1, 4, 7});
  EXPECT_TRUE(s.ContainsAll(Subspace({1, 7})));
  EXPECT_TRUE(s.ContainsAll(Subspace({})));
  EXPECT_TRUE(s.ContainsAll(s));
  EXPECT_FALSE(s.ContainsAll(Subspace({1, 2})));
  EXPECT_FALSE(Subspace({1}).ContainsAll(s));
}

TEST(SubspaceTest, WithAddsFeature) {
  Subspace s({1, 3});
  EXPECT_EQ(s.With(2), Subspace({1, 2, 3}));
  EXPECT_EQ(s.With(3), s);  // Already present.
}

TEST(SubspaceTest, UnionMerges) {
  EXPECT_EQ(Subspace({0, 2}).Union(Subspace({1, 2, 5})),
            Subspace({0, 1, 2, 5}));
}

TEST(SubspaceTest, ToString) {
  EXPECT_EQ(Subspace({3, 1}).ToString(), "{f1,f3}");
  EXPECT_EQ(Subspace().ToString(), "{}");
}

TEST(SubspaceTest, OrderingIsLexicographic) {
  EXPECT_LT(Subspace({0, 1}), Subspace({0, 2}));
  EXPECT_LT(Subspace({0}), Subspace({0, 1}));
}

TEST(SubspaceTest, HashConsistentWithEquality) {
  SubspaceHash hash;
  EXPECT_EQ(hash(Subspace({2, 0, 1})), hash(Subspace({0, 1, 2})));
  std::unordered_set<Subspace, SubspaceHash> set;
  set.insert(Subspace({0, 1}));
  set.insert(Subspace({1, 0}));
  set.insert(Subspace({0, 2}));
  EXPECT_EQ(set.size(), 2u);
}

TEST(SubspaceTest, HashSpreadsDistinctSubspaces) {
  SubspaceHash hash;
  std::unordered_set<std::size_t> hashes;
  for (int a = 0; a < 12; ++a) {
    for (int b = a + 1; b < 12; ++b) {
      hashes.insert(hash(Subspace({a, b})));
    }
  }
  EXPECT_EQ(hashes.size(), 66u);  // No collisions across 12-choose-2 pairs.
}

}  // namespace
}  // namespace subex
