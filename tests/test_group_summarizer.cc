#include "explain/group_summarizer.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "data/generators.h"
#include "detect/lof.h"
#include "explain/beam.h"

namespace subex {
namespace {

SyntheticDataset TwoSubspaceData() {
  HicsGeneratorConfig config;
  config.num_points = 300;
  config.subspace_dims = {2, 2};
  config.seed = 57;
  return GenerateHicsDataset(config);
}

Beam SmallBeam() {
  Beam::Options options;
  options.beam_width = 10;
  return Beam(options);
}

TEST(GroupSummarizerTest, RecoversPlantedGroupStructure) {
  const SyntheticDataset d = TwoSubspaceData();
  const Lof lof(15);
  const Beam beam = SmallBeam();
  const std::vector<OutlierGroup> groups = GroupAndCharacterize(
      d.dataset, lof, beam, d.dataset.outlier_indices(), 2);

  // Two planted subspaces with 5 outliers each -> expect 2 groups whose
  // top characterizing subspace is the planted one.
  ASSERT_EQ(groups.size(), 2u);
  for (const OutlierGroup& group : groups) {
    EXPECT_EQ(group.points.size(), 5u);
    ASSERT_FALSE(group.characterizing_subspaces.empty());
    const Subspace& top = group.characterizing_subspaces.front();
    EXPECT_NE(std::find(d.relevant_subspaces.begin(),
                        d.relevant_subspaces.end(), top),
              d.relevant_subspaces.end())
        << "characterizing subspace " << top.ToString() << " not planted";
    // Every member's ground truth matches the group's characterization.
    for (int p : group.points) {
      EXPECT_EQ(d.ground_truth.RelevantFor(p).front(), top);
    }
  }
  // The two groups characterize different subspaces.
  EXPECT_NE(groups[0].characterizing_subspaces.front(),
            groups[1].characterizing_subspaces.front());
}

TEST(GroupSummarizerTest, GroupsPartitionThePointSet) {
  const SyntheticDataset d = TwoSubspaceData();
  const Lof lof(15);
  const Beam beam = SmallBeam();
  const std::vector<OutlierGroup> groups = GroupAndCharacterize(
      d.dataset, lof, beam, d.dataset.outlier_indices(), 2);
  std::vector<int> all;
  for (const OutlierGroup& g : groups) {
    all.insert(all.end(), g.points.begin(), g.points.end());
  }
  std::sort(all.begin(), all.end());
  EXPECT_EQ(all, d.dataset.outlier_indices());
}

TEST(GroupSummarizerTest, HighJaccardThresholdSplitsGroups) {
  const SyntheticDataset d = TwoSubspaceData();
  const Lof lof(15);
  const Beam beam = SmallBeam();
  GroupSummarizerOptions options;
  options.min_similarity = 0.99;     // Near-identical fingerprints only.
  options.subspaces_per_point = 5;   // Longer fingerprints rarely match.
  const std::vector<OutlierGroup> strict = GroupAndCharacterize(
      d.dataset, lof, beam, d.dataset.outlier_indices(), 2, options);
  GroupSummarizerOptions loose = options;
  loose.min_similarity = 0.2;
  const std::vector<OutlierGroup> merged = GroupAndCharacterize(
      d.dataset, lof, beam, d.dataset.outlier_indices(), 2, loose);
  EXPECT_GE(strict.size(), merged.size());
}

TEST(GroupSummarizerTest, SortedLargestFirstAndDeterministic) {
  const SyntheticDataset d = TwoSubspaceData();
  const Lof lof(15);
  const Beam beam = SmallBeam();
  const std::vector<OutlierGroup> a = GroupAndCharacterize(
      d.dataset, lof, beam, d.dataset.outlier_indices(), 2);
  const std::vector<OutlierGroup> b = GroupAndCharacterize(
      d.dataset, lof, beam, d.dataset.outlier_indices(), 2);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].points, b[i].points);
    EXPECT_EQ(a[i].characterizing_subspaces, b[i].characterizing_subspaces);
    if (i > 0) EXPECT_GE(a[i - 1].points.size(), a[i].points.size());
  }
}

TEST(GroupSummarizerTest, SinglePointIsItsOwnGroup) {
  const SyntheticDataset d = TwoSubspaceData();
  const Lof lof(15);
  const Beam beam = SmallBeam();
  const std::vector<int> one = {d.dataset.outlier_indices().front()};
  const std::vector<OutlierGroup> groups =
      GroupAndCharacterize(d.dataset, lof, beam, one, 2);
  ASSERT_EQ(groups.size(), 1u);
  EXPECT_EQ(groups[0].points, one);
}

TEST(GroupSummarizerTest, MaxCharacterizingHonoured) {
  const SyntheticDataset d = TwoSubspaceData();
  const Lof lof(15);
  const Beam beam = SmallBeam();
  GroupSummarizerOptions options;
  options.max_characterizing = 1;
  const std::vector<OutlierGroup> groups = GroupAndCharacterize(
      d.dataset, lof, beam, d.dataset.outlier_indices(), 2, options);
  for (const OutlierGroup& g : groups) {
    EXPECT_LE(g.characterizing_subspaces.size(), 1u);
  }
}

}  // namespace
}  // namespace subex
