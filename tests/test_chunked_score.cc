#include "detect/chunked_score.h"

#include <gtest/gtest.h>
#include <unistd.h>

#include <string>
#include <vector>

#include "data/columnar.h"
#include "data/csv.h"
#include "data/generators.h"
#include "detect/knn_distance.h"
#include "detect/loda.h"
#include "detect/lof.h"
#include "mem/eviction_manager.h"

namespace subex {
namespace {

// Per-process unique paths: ctest runs tests of this suite in parallel
// *processes*, and two of them rewriting one file under an active mmap is
// a SIGBUS.
std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "subex_chunked_" +
         std::to_string(::getpid()) + "_" + name;
}

/// One fixture dataset on disk + in RAM: a generated mixture with labelled
/// outliers, written columnar with small chunks so every scorer crosses
/// many chunk boundaries.
class ChunkedScoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    HicsGeneratorConfig config;
    config.num_points = 412;
    config.subspace_dims = {3, 2};  // 5 features total.
    config.outliers_per_subspace = 6;
    config.seed = 7;
    dataset_ = GenerateHicsDataset(config).dataset;
    path_ = TempPath("fixture.cols");
    std::string error;
    ASSERT_TRUE(WriteColumnarDataset(path_, dataset_, /*rows_per_chunk=*/64,
                                     &error))
        << error;
  }

  /// Opens the columnar file under a fresh manager with `budget_bytes`.
  ChunkedDataset::OpenResult OpenChunked(EvictionManager* manager) {
    ChunkedDatasetOptions options;
    options.manager = manager;
    return ChunkedDataset::Open(path_, options);
  }

  Dataset dataset_;
  std::string path_;
};

TEST_F(ChunkedScoreTest, KnnDistanceMatchesInRamBitwise) {
  EvictionManager manager(EvictionManager::Options{.budget_bytes = 16 << 20});
  auto open = OpenChunked(&manager);
  ASSERT_TRUE(open.ok) << open.error;

  const Subspace subspace({0, 2, 3});
  for (const auto aggregation : {KnnDistance::Aggregation::kMax,
                                 KnnDistance::Aggregation::kMean}) {
    const std::vector<double> in_ram =
        KnnDistance(10, aggregation).Score(dataset_, subspace);
    const std::vector<double> streamed = ScoreKnnDistanceChunked(
        *open.dataset, subspace, 10, aggregation);
    ASSERT_EQ(streamed.size(), in_ram.size());
    for (std::size_t p = 0; p < in_ram.size(); ++p) {
      EXPECT_EQ(streamed[p], in_ram[p]) << "point " << p;
    }
  }
}

TEST_F(ChunkedScoreTest, KnnDistanceQuerySubsetMatchesInRam) {
  EvictionManager manager(EvictionManager::Options{.budget_bytes = 16 << 20});
  auto open = OpenChunked(&manager);
  ASSERT_TRUE(open.ok) << open.error;

  const Subspace subspace({1, 4});
  const std::vector<double> in_ram =
      KnnDistance(5, KnnDistance::Aggregation::kMean).Score(dataset_, subspace);
  // The points of interest are the natural query set at scale.
  const std::vector<int>& queries = open.dataset->outlier_indices();
  ASSERT_FALSE(queries.empty());
  const std::vector<double> streamed = ScoreKnnDistanceChunked(
      *open.dataset, subspace, 5, KnnDistance::Aggregation::kMean, queries);
  ASSERT_EQ(streamed.size(), queries.size());
  for (std::size_t i = 0; i < queries.size(); ++i) {
    EXPECT_EQ(streamed[i], in_ram[queries[i]]) << "query " << queries[i];
  }
}

TEST_F(ChunkedScoreTest, LofMatchesInRamBitwise) {
  EvictionManager manager(EvictionManager::Options{.budget_bytes = 16 << 20});
  auto open = OpenChunked(&manager);
  ASSERT_TRUE(open.ok) << open.error;

  const Subspace subspace({0, 1, 2});
  const std::vector<double> in_ram = Lof(8).Score(dataset_, subspace);
  const std::vector<double> streamed =
      ScoreLofChunked(*open.dataset, subspace, 8);
  ASSERT_EQ(streamed.size(), in_ram.size());
  for (std::size_t p = 0; p < in_ram.size(); ++p) {
    EXPECT_EQ(streamed[p], in_ram[p]) << "point " << p;
  }
}

TEST_F(ChunkedScoreTest, LofQuerySubsetMatchesInRam) {
  EvictionManager manager(EvictionManager::Options{.budget_bytes = 16 << 20});
  auto open = OpenChunked(&manager);
  ASSERT_TRUE(open.ok) << open.error;

  const Subspace subspace({0, 3});
  const std::vector<double> in_ram = Lof(6).Score(dataset_, subspace);
  const std::vector<int>& queries = open.dataset->outlier_indices();
  const std::vector<double> streamed =
      ScoreLofChunked(*open.dataset, subspace, 6, queries);
  ASSERT_EQ(streamed.size(), queries.size());
  for (std::size_t i = 0; i < queries.size(); ++i) {
    EXPECT_EQ(streamed[i], in_ram[queries[i]]) << "query " << queries[i];
  }
}

TEST_F(ChunkedScoreTest, LodaMatchesInRamBitwise) {
  EvictionManager manager(EvictionManager::Options{.budget_bytes = 16 << 20});
  auto open = OpenChunked(&manager);
  ASSERT_TRUE(open.ok) << open.error;

  Loda::Options options;
  options.num_projections = 25;
  options.seed = 1234;
  const Subspace subspace({0, 1, 2, 3, 4});
  const std::vector<double> in_ram = Loda(options).Score(dataset_, subspace);
  const std::vector<double> streamed =
      ScoreLodaChunked(*open.dataset, subspace, options);
  ASSERT_EQ(streamed.size(), in_ram.size());
  for (std::size_t p = 0; p < in_ram.size(); ++p) {
    EXPECT_EQ(streamed[p], in_ram[p]) << "point " << p;
  }
}

TEST_F(ChunkedScoreTest, EmptySubspaceMeansFullSpaceLikeDetectors) {
  EvictionManager manager(EvictionManager::Options{.budget_bytes = 16 << 20});
  auto open = OpenChunked(&manager);
  ASSERT_TRUE(open.ok) << open.error;

  const Subspace empty;
  const std::vector<double> in_ram =
      KnnDistance(4, KnnDistance::Aggregation::kMax).Score(dataset_, empty);
  const std::vector<double> streamed = ScoreKnnDistanceChunked(
      *open.dataset, empty, 4, KnnDistance::Aggregation::kMax);
  ASSERT_EQ(streamed.size(), in_ram.size());
  for (std::size_t p = 0; p < in_ram.size(); ++p) {
    EXPECT_EQ(streamed[p], in_ram[p]);
  }
}

TEST_F(ChunkedScoreTest, TinyBudgetForcesEvictionMidScoringYetScoresMatch) {
  // A budget of roughly two chunks (64 rows x 8 B = 512 B each) forces the
  // scorers to evict and reload chunks constantly; scores must not change.
  EvictionManager manager(EvictionManager::Options{.budget_bytes = 2 << 10});
  auto open = OpenChunked(&manager);
  ASSERT_TRUE(open.ok) << open.error;

  const Subspace subspace({0, 1, 2});
  const std::vector<double> in_ram =
      KnnDistance(10, KnnDistance::Aggregation::kMean).Score(dataset_, subspace);
  const std::vector<double> streamed = ScoreKnnDistanceChunked(
      *open.dataset, subspace, 10, KnnDistance::Aggregation::kMean);
  for (std::size_t p = 0; p < in_ram.size(); ++p) {
    EXPECT_EQ(streamed[p], in_ram[p]);
  }
  const ChunkedDatasetStats stats = open.dataset->stats();
  EXPECT_GT(stats.evictions, 0u);
  // Working set = 3 pinned chunks (~1.5 KB) stays near the 2 KB budget even
  // though every chunk of the dataset streams through it.
  EXPECT_LE(manager.used_bytes(), manager.budget_bytes() + 3 * 512);

  const std::vector<double> loda_in_ram = Loda().Score(dataset_, subspace);
  const std::vector<double> loda_streamed =
      ScoreLodaChunked(*open.dataset, subspace, Loda::Options{});
  for (std::size_t p = 0; p < loda_in_ram.size(); ++p) {
    EXPECT_EQ(loda_streamed[p], loda_in_ram[p]);
  }
}

}  // namespace
}  // namespace subex
