#include "detect/lof.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "common/rng.h"
#include "common/topk.h"

namespace subex {
namespace {

// One dense Gaussian blob plus one far-away point.
Dataset BlobWithOutlier(int n, std::uint64_t seed) {
  Rng rng(seed);
  Matrix m(n, 2);
  for (int p = 0; p < n - 1; ++p) {
    m(p, 0) = rng.Gaussian(0.0, 0.1);
    m(p, 1) = rng.Gaussian(0.0, 0.1);
  }
  m(n - 1, 0) = 3.0;
  m(n - 1, 1) = 3.0;
  return Dataset(std::move(m), {n - 1});
}

TEST(LofTest, InlierScoresNearOne) {
  const Dataset d = BlobWithOutlier(100, 1);
  const Lof lof(15);
  const std::vector<double> scores = lof.Score(d, Subspace());
  for (int p = 0; p < 99; ++p) {
    EXPECT_GT(scores[p], 0.7);
    EXPECT_LT(scores[p], 2.0);
  }
}

TEST(LofTest, OutlierScoresFarAboveOne) {
  const Dataset d = BlobWithOutlier(100, 2);
  const Lof lof(15);
  const std::vector<double> scores = lof.Score(d, Subspace());
  EXPECT_GT(scores[99], 5.0);
  EXPECT_EQ(TopKIndices(scores, 1).front(), 99);
}

TEST(LofTest, UniformDataScoresNearOne) {
  Rng rng(3);
  Matrix m(200, 2);
  for (int p = 0; p < 200; ++p) {
    m(p, 0) = rng.Uniform();
    m(p, 1) = rng.Uniform();
  }
  const Dataset d(std::move(m));
  const Lof lof(15);
  const std::vector<double> scores = lof.Score(d, Subspace());
  int near_one = 0;
  for (double s : scores) {
    if (s > 0.8 && s < 1.5) ++near_one;
  }
  EXPECT_GT(near_one, 180);
}

TEST(LofTest, DetectsLocalDensityOutlier) {
  // A point sitting between a dense and a sparse cluster is locally rare
  // relative to the dense cluster's density -- the canonical LOF scenario.
  Rng rng(4);
  Matrix m(121, 2);
  for (int p = 0; p < 60; ++p) {  // Dense cluster at (0, 0).
    m(p, 0) = rng.Gaussian(0.0, 0.02);
    m(p, 1) = rng.Gaussian(0.0, 0.02);
  }
  for (int p = 60; p < 120; ++p) {  // Sparse cluster at (4, 4).
    m(p, 0) = rng.Gaussian(4.0, 0.8);
    m(p, 1) = rng.Gaussian(4.0, 0.8);
  }
  m(120, 0) = 0.5;  // Near the dense cluster but well outside its spread.
  m(120, 1) = 0.5;
  const Dataset d(std::move(m));
  const Lof lof(15);
  const std::vector<double> scores = lof.Score(d, Subspace());
  EXPECT_EQ(TopKIndices(scores, 1).front(), 120);
}

TEST(LofTest, SubspaceScoringSeesOnlyThoseFeatures) {
  // Outlier only in feature 1; feature 0 is uniform for everyone.
  Rng rng(5);
  Matrix m(80, 2);
  for (int p = 0; p < 80; ++p) {
    m(p, 0) = rng.Uniform();
    m(p, 1) = rng.Gaussian(0.0, 0.05);
  }
  m(79, 1) = 2.0;
  const Dataset d(std::move(m));
  const Lof lof(15);
  const std::vector<double> with = lof.Score(d, Subspace({1}));
  const std::vector<double> without = lof.Score(d, Subspace({0}));
  EXPECT_EQ(TopKIndices(with, 1).front(), 79);
  EXPECT_LT(without[79], 2.0);
}

TEST(LofTest, DeterministicAcrossCalls) {
  const Dataset d = BlobWithOutlier(60, 6);
  const Lof lof(15);
  EXPECT_EQ(lof.Score(d, Subspace()), lof.Score(d, Subspace()));
}

TEST(LofTest, DuplicatePointsDoNotCrash) {
  Matrix m(30, 1);
  for (int p = 0; p < 30; ++p) m(p, 0) = (p < 15) ? 1.0 : 2.0;
  const Dataset d(std::move(m));
  const Lof lof(5);
  const std::vector<double> scores = lof.Score(d, Subspace());
  for (double s : scores) EXPECT_TRUE(std::isfinite(s));
}

TEST(LofTest, ScoresIndependentOfK) {
  // Different k values change scores but not the identity of a gross
  // outlier.
  const Dataset d = BlobWithOutlier(100, 7);
  for (int k : {5, 10, 20, 30}) {
    const Lof lof(k);
    const std::vector<double> scores = lof.Score(d, Subspace());
    EXPECT_EQ(TopKIndices(scores, 1).front(), 99) << "k=" << k;
  }
}

}  // namespace
}  // namespace subex
