#include "serve/scoring_service.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <thread>
#include <vector>

#include "core/ground_truth_builder.h"
#include "core/pipeline.h"
#include "data/generators.h"
#include "detect/fast_abod.h"
#include "detect/isolation_forest.h"
#include "detect/lof.h"
#include "explain/beam.h"
#include "subspace/enumeration.h"

namespace subex {
namespace {

SyntheticDataset SmallHics(std::uint64_t seed = 77) {
  HicsGeneratorConfig config;
  config.num_points = 150;
  config.subspace_dims = {2, 2, 3};  // 7 features.
  config.seed = seed;
  return GenerateHicsDataset(config);
}

/// Counts `Score` invocations and, while the latch is armed, blocks the
/// computing thread until every test thread has issued its request — making
/// the single-flight race window deterministic.
class CountingDetector : public Detector {
 public:
  CountingDetector(const Detector& inner, std::atomic<int>* arrivals = nullptr,
                   int expected_arrivals = 0)
      : inner_(inner),
        arrivals_(arrivals),
        expected_arrivals_(expected_arrivals) {}

  std::string name() const override { return inner_.name(); }

  std::vector<double> Score(const Dataset& data,
                            const Subspace& subspace) const override {
    computes_.fetch_add(1);
    if (arrivals_ != nullptr) {
      while (arrivals_->load() < expected_arrivals_) {
        std::this_thread::yield();
      }
    }
    return inner_.Score(data, subspace);
  }

  int computes() const { return computes_.load(); }

 private:
  const Detector& inner_;
  std::atomic<int>* arrivals_;
  int expected_arrivals_;
  mutable std::atomic<int> computes_{0};
};

TEST(ScoringServiceTest, CachedResultBitwiseEqualsDirectScoreStandardized) {
  const SyntheticDataset d = SmallHics();
  const Lof lof(15);
  const FastAbod abod(10);
  IsolationForest::Options forest_options;
  forest_options.num_trees = 20;
  forest_options.num_repetitions = 2;
  const IsolationForest forest(forest_options);
  const std::vector<const Detector*> detectors = {&lof, &abod, &forest};

  for (const Detector* detector : detectors) {
    ScoringService service(*detector, d.dataset);
    for (const Subspace& s : EnumerateSubspaces(7, 2)) {
      const std::vector<double> direct =
          ScoreStandardized(*detector, d.dataset, s);
      const ScoreVectorPtr first = service.Score(s);   // Miss: computes.
      const ScoreVectorPtr second = service.Score(s);  // Hit: cached.
      ASSERT_EQ(*first, direct) << detector->name() << " " << s.ToString();
      ASSERT_EQ(second, first) << "hit must serve the identical vector";
    }
    const ServiceStatsSnapshot stats = service.stats();
    EXPECT_EQ(stats.misses, 21u);  // C(7,2).
    EXPECT_EQ(stats.hits, 21u);
    EXPECT_GT(stats.compute_ns, 0u);
  }
}

TEST(ScoringServiceTest, StochasticDetectorIsDeterministicAcrossServices) {
  const SyntheticDataset d = SmallHics();
  IsolationForest::Options options;
  options.num_trees = 20;
  options.seed = 5;
  const IsolationForest forest(options);
  ScoringService a(forest, d.dataset);
  ScoringService b(forest, d.dataset);
  const Subspace s({1, 4});
  EXPECT_EQ(*a.Score(s), *b.Score(s));
}

TEST(ScoringServiceTest, SingleFlightComputesOnceUnderConcurrentRequests) {
  const SyntheticDataset d = SmallHics();
  const Lof lof(15);
  constexpr int kThreads = 8;
  std::atomic<int> arrivals{0};
  const CountingDetector counting(lof, &arrivals, kThreads);
  ScoringService service(counting, d.dataset);

  const Subspace s({0, 3});
  std::vector<ScoreVectorPtr> results(kThreads);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      arrivals.fetch_add(1);
      results[t] = service.Score(s);
    });
  }
  for (std::thread& t : threads) t.join();

  EXPECT_EQ(counting.computes(), 1) << "single-flight must compute once";
  const ServiceStatsSnapshot stats = service.stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits + stats.dedup_joins, kThreads - 1u);
  for (const ScoreVectorPtr& r : results) {
    ASSERT_NE(r, nullptr);
    EXPECT_EQ(*r, *results[0]);
  }
}

TEST(ScoringServiceTest, SingleFlightAlsoDedupsWithCacheDisabled) {
  const SyntheticDataset d = SmallHics();
  const Lof lof(15);
  constexpr int kThreads = 4;
  std::atomic<int> arrivals{0};
  const CountingDetector counting(lof, &arrivals, kThreads);
  ScoringServiceOptions options;
  options.enable_cache = false;
  ScoringService service(counting, d.dataset, options);

  const Subspace s({2, 5});
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      arrivals.fetch_add(1);
      EXPECT_EQ(*service.Score(s), ScoreStandardized(lof, d.dataset, s));
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(counting.computes(), 1);
  // With no cache, a later identical request recomputes.
  service.Score(s);
  EXPECT_EQ(counting.computes(), 2);
}

TEST(ScoringServiceTest, ScoreManyMatchesDirectAndSharesDuplicates) {
  const SyntheticDataset d = SmallHics();
  const Lof lof(15);
  ThreadPool pool(4);
  ScoringService service(lof, d.dataset, ScoringServiceOptions{}, &pool);

  std::vector<Subspace> batch = EnumerateSubspaces(7, 2);
  batch.push_back(batch.front());  // Duplicate within the batch.
  batch.push_back(batch[3]);
  const std::vector<ScoreVectorPtr> results = service.ScoreMany(batch);
  ASSERT_EQ(results.size(), batch.size());
  for (std::size_t i = 0; i < batch.size(); ++i) {
    ASSERT_NE(results[i], nullptr);
    EXPECT_EQ(*results[i], ScoreStandardized(lof, d.dataset, batch[i]));
  }
  EXPECT_EQ(results.back(), results[3]) << "duplicates share one vector";
  const ServiceStatsSnapshot stats = service.stats();
  EXPECT_EQ(stats.misses, 21u);
  EXPECT_EQ(stats.dedup_joins, 2u);
}

TEST(ScoringServiceTest, StressOverlappingWritersMatchDirectScores) {
  const SyntheticDataset d = SmallHics();
  IsolationForest::Options forest_options;
  forest_options.num_trees = 10;  // Stochastic: seeded per subspace.
  const IsolationForest forest(forest_options);

  // Tiny budget so the stress continuously evicts and recomputes.
  ScoringServiceOptions options;
  options.cache.num_shards = 4;
  options.cache.max_entries = 8;
  ScoringService service(forest, d.dataset, options);

  const std::vector<Subspace> subspaces = EnumerateSubspaces(7, 2);
  std::vector<std::vector<double>> expected;
  expected.reserve(subspaces.size());
  for (const Subspace& s : subspaces) {
    expected.push_back(ScoreStandardized(forest, d.dataset, s));
  }

  const unsigned hw = std::thread::hardware_concurrency();
  const int num_threads = static_cast<int>(hw == 0 ? 4 : std::min(hw, 8u));
  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < num_threads; ++t) {
    threads.emplace_back([&, t] {
      // Overlapping coverage: every thread walks all subspaces, phase-
      // shifted so threads collide on different keys at different times.
      for (int round = 0; round < 6; ++round) {
        for (std::size_t j = 0; j < subspaces.size(); ++j) {
          const std::size_t i = (j + t * 7 + round) % subspaces.size();
          const ScoreVectorPtr got = service.Score(subspaces[i]);
          if (*got != expected[i]) mismatches.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(mismatches.load(), 0)
      << "cached scores must be byte-identical to direct ScoreStandardized";
  const ServiceStatsSnapshot stats = service.stats();
  EXPECT_EQ(stats.Requests(),
            static_cast<std::uint64_t>(num_threads) * 6u * subspaces.size());
  EXPECT_GT(stats.evictions, 0u) << "budget of 8 must evict under 21 keys";
}

TEST(CachingDetectorTest, AdapterIsBitwiseEquivalentForExplainers) {
  const SyntheticDataset d = SmallHics();
  const Lof lof(15);
  ScoringService service(lof, d.dataset);
  const CachingDetector caching(service);
  EXPECT_EQ(caching.name(), "LOF");
  EXPECT_TRUE(caching.ReturnsStandardizedScores());

  const Subspace s({1, 2});
  EXPECT_EQ(ScoreStandardized(caching, d.dataset, s),
            ScoreStandardized(lof, d.dataset, s));

  const Beam beam;
  const int point = d.dataset.outlier_indices().front();
  const RankedSubspaces direct = beam.Explain(d.dataset, lof, point, 2);
  const RankedSubspaces cached = beam.Explain(d.dataset, caching, point, 2);
  ASSERT_EQ(cached.subspaces.size(), direct.subspaces.size());
  for (std::size_t i = 0; i < direct.subspaces.size(); ++i) {
    EXPECT_EQ(cached.subspaces[i], direct.subspaces[i]);
    EXPECT_EQ(cached.scores[i], direct.scores[i]);
  }
  EXPECT_GT(service.stats().Requests(), 0u);
}

TEST(ScoringServiceTest, PipelineOverloadMatchesPlainPipeline) {
  const SyntheticDataset d = SmallHics();
  const Lof lof(15);
  const Beam beam;
  const PipelineResult plain =
      RunPointExplanationPipeline(d.dataset, d.ground_truth, lof, beam, 2);

  ThreadPool pool(3);
  ScoringService service(lof, d.dataset, ScoringServiceOptions{}, &pool);
  const PipelineResult served =
      RunPointExplanationPipeline(service, d.ground_truth, beam, 2);
  EXPECT_EQ(served.map, plain.map);
  EXPECT_EQ(served.mean_recall, plain.mean_recall);
  EXPECT_EQ(served.num_points, plain.num_points);
  EXPECT_EQ(served.detector_name, plain.detector_name);
  EXPECT_GT(service.stats().HitRate(), 0.0)
      << "beam re-scores overlapping subspaces across points";
}

TEST(ScoringServiceTest, GroundTruthBuilderOverloadMatchesDetectorPath) {
  FullSpaceGeneratorConfig config;
  config.num_points = 60;
  config.num_features = 6;
  config.num_outliers = 6;
  config.seed = 3;
  const SyntheticDataset d = GenerateFullSpaceDataset(config);
  const Lof lof(15);
  GroundTruthBuilderOptions options;
  options.min_dim = 2;
  options.max_dim = 3;
  const GroundTruth direct =
      BuildGroundTruthByExhaustiveSearch(d.dataset, lof, options);

  ThreadPool pool(3);
  ScoringServiceOptions service_options;
  service_options.enable_cache = false;
  ScoringService service(lof, d.dataset, service_options, &pool);
  const GroundTruth served =
      BuildGroundTruthByExhaustiveSearch(service, options);
  for (int p : d.dataset.outlier_indices()) {
    EXPECT_EQ(served.RelevantFor(p), direct.RelevantFor(p));
  }
}

TEST(ScoringServiceTest, TinyCacheStaysCorrectUnderEviction) {
  const SyntheticDataset d = SmallHics();
  const Lof lof(15);
  ScoringServiceOptions options;
  options.cache.num_shards = 1;
  options.cache.max_entries = 2;
  ScoringService service(lof, d.dataset, options);
  const std::vector<Subspace> subspaces = EnumerateSubspaces(7, 2);
  for (int round = 0; round < 3; ++round) {
    for (const Subspace& s : subspaces) {
      EXPECT_EQ(*service.Score(s), ScoreStandardized(lof, d.dataset, s));
    }
  }
  EXPECT_GT(service.stats().evictions, 0u);
}

TEST(ServiceStatsTest, SnapshotAndReset) {
  ServiceStats stats;
  stats.RecordHit();
  stats.RecordHit();
  stats.RecordMiss();
  stats.RecordDedupJoin();
  stats.RecordEviction();
  stats.RecordComputeNs(1500000000ull);
  ServiceStatsSnapshot snap = stats.snapshot();
  EXPECT_EQ(snap.hits, 2u);
  EXPECT_EQ(snap.misses, 1u);
  EXPECT_EQ(snap.dedup_joins, 1u);
  EXPECT_EQ(snap.evictions, 1u);
  EXPECT_EQ(snap.Requests(), 4u);
  EXPECT_DOUBLE_EQ(snap.HitRate(), 0.75);
  EXPECT_DOUBLE_EQ(snap.ComputeSeconds(), 1.5);
  EXPECT_NE(snap.ToString().find("hit rate 75.0%"), std::string::npos);
  EXPECT_EQ(snap.ToJson(),
            "{\"hits\":2,\"misses\":1,\"dedup_joins\":1,\"evictions\":1,"
            "\"requests\":4,\"hit_rate\":0.75,\"compute_seconds\":1.5}");
  stats.Reset();
  snap = stats.snapshot();
  EXPECT_EQ(snap.Requests(), 0u);
  EXPECT_EQ(snap.HitRate(), 0.0);
}

}  // namespace
}  // namespace subex
