#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "detect/loda.h"
#include "detect/lof.h"
#include "explain/beam.h"
#include "net/explain_client.h"
#include "net/explain_server.h"
#include "online/online_dataset.h"
#include "stream/drifting_stream.h"

namespace subex {
namespace {

/// One online dataset (LODA incremental + LOF re-index) behind a started
/// server, plus a drifting stream to ingest from.
class OnlineServeTest : public ::testing::Test {
 protected:
  void StartServer() {
    OnlineDatasetOptions options;
    options.name = "stream";
    options.window_capacity = 64;
    options.advance_every = 16;
    options.min_score_window = 16;
    options.drift.min_window = 16;
    dataset_ = std::make_unique<OnlineDataset>(options, kFeatures);
    Loda::Options loda_options;
    loda_options.num_projections = 16;
    dataset_->AddLoda("LODA", loda_options);
    dataset_->AddReindexDetector("LOF", lof_);

    pool_ = std::make_unique<ThreadPool>(2);
    server_ = std::make_unique<ExplainServer>(ExplainServerOptions{},
                                              pool_.get());
    server_->RegisterOnlineDataset(*dataset_);
    server_->RegisterExplainer("Beam", beam_);
    std::string error;
    ASSERT_TRUE(server_->Start(&error)) << error;
  }

  ExplainClient MakeClient() {
    ExplainClient client;
    std::string error;
    EXPECT_TRUE(client.Connect("127.0.0.1", server_->port(), &error)) << error;
    return client;
  }

  /// Row-major values of the next `n` stream rows.
  std::vector<double> NextRows(std::size_t n) {
    std::vector<double> values;
    values.reserve(n * kFeatures);
    while (values.size() < n * kFeatures) {
      if (buffered_.empty()) {
        const StreamChunk chunk = stream_.Next();
        for (std::size_t r = 0; r < chunk.points.rows(); ++r) {
          for (std::size_t f = 0; f < chunk.points.cols(); ++f) {
            buffered_.push_back(chunk.points(r, f));
          }
        }
      }
      values.push_back(buffered_.front());
      buffered_.erase(buffered_.begin());
    }
    return values;
  }

  static constexpr std::size_t kFeatures = 5;

  DriftingStreamGenerator stream_{[] {
    DriftingStreamConfig config;
    config.chunk_size = 64;
    config.outliers_per_chunk = 3;
    config.drift_every_chunks = 4;
    config.subspace_dims = {2, 3};  // 5 features.
    config.seed = 31;
    return config;
  }()};
  std::vector<double> buffered_;
  Lof lof_{5};
  Beam beam_;
  std::unique_ptr<OnlineDataset> dataset_;
  std::unique_ptr<ThreadPool> pool_;
  std::unique_ptr<ExplainServer> server_;
};

TEST_F(OnlineServeTest, IngestReportsWindowProgress) {
  StartServer();
  ExplainClient client = MakeClient();

  const ExplainClient::IngestReply r1 = client.Ingest("stream", 8, NextRows(8));
  ASSERT_TRUE(r1.ok()) << r1.error;
  EXPECT_EQ(r1.result.accepted, 8u);
  EXPECT_EQ(r1.result.window_epoch, 0u);  // Still pending, below the stride.
  EXPECT_EQ(r1.result.window_size, 0u);
  EXPECT_EQ(r1.result.advances, 0u);

  const ExplainClient::IngestReply r2 =
      client.Ingest("stream", 24, NextRows(24));
  ASSERT_TRUE(r2.ok()) << r2.error;
  EXPECT_EQ(r2.result.window_epoch, 2u);  // 32 rows = two strides of 16.
  EXPECT_EQ(r2.result.window_size, 32u);
  EXPECT_EQ(r2.result.total_ingested, 32u);
  EXPECT_EQ(r2.result.advances, 2u);
  EXPECT_EQ(dataset_->epoch(), 2u);
}

TEST_F(OnlineServeTest, OnlineScoreMatchesInProcessBitwise) {
  StartServer();
  ExplainClient client = MakeClient();
  ASSERT_TRUE(client.Ingest("stream", 48, NextRows(48)).ok());

  for (const Subspace& subspace :
       {Subspace(), Subspace({0, 1}), Subspace({2, 3, 4})}) {
    const ExplainClient::OnlineScoreReply wire =
        client.OnlineScore("stream", "LODA", subspace);
    ASSERT_TRUE(wire.ok()) << wire.error;
    OnlineDataset::ScoredEpoch direct;
    ASSERT_EQ(dataset_->Score("LODA", subspace, &direct),
              OnlineDataset::Status::kOk);
    EXPECT_EQ(wire.epoch, direct.epoch);
    EXPECT_EQ(wire.scores, *direct.scores) << subspace.ToString();
  }
  const ExplainClient::OnlineScoreReply lof_wire =
      client.OnlineScore("stream", "LOF", Subspace({1, 2}));
  ASSERT_TRUE(lof_wire.ok()) << lof_wire.error;
  const OnlineDataset::EpochSnapshot snapshot = dataset_->Snapshot();
  EXPECT_EQ(lof_wire.scores,
            ScoreStandardized(lof_, *snapshot.data, Subspace({1, 2})));
}

TEST_F(OnlineServeTest, OnlineExplainMatchesInProcessAndReportsEpochs) {
  StartServer();
  ExplainClient client = MakeClient();
  ASSERT_TRUE(client.Ingest("stream", 64, NextRows(64)).ok());

  const ExplainClient::OnlineExplainReply wire =
      client.OnlineExplain("stream", "LODA", "Beam", 5, 2, 4);
  ASSERT_TRUE(wire.ok()) << wire.error;
  EXPECT_EQ(wire.computed_epoch, dataset_->epoch());
  EXPECT_EQ(wire.current_epoch, dataset_->epoch());
  EXPECT_FALSE(wire.stale());
  ASSERT_GT(wire.ranking.size(), 0u);
  ASSERT_LE(wire.ranking.size(), 4u);

  // Same pinned-epoch path in process: the ranking must agree exactly.
  const OnlineDataset::EpochSnapshot snapshot = dataset_->Snapshot();
  const PinnedEpochDetector pinned(*dataset_, snapshot, "LODA");
  RankedSubspaces expected = beam_.Explain(*snapshot.data, pinned, 5, 2);
  expected.subspaces.resize(wire.ranking.size());
  expected.scores.resize(wire.ranking.size());
  EXPECT_EQ(wire.ranking.subspaces, expected.subspaces);
  EXPECT_EQ(wire.ranking.scores, expected.scores);
  EXPECT_EQ(dataset_->stats().stale_serves, 0u);
}

TEST_F(OnlineServeTest, OnlineErrorsAreReported) {
  StartServer();
  ExplainClient client = MakeClient();

  ExplainClient::IngestReply ingest = client.Ingest("nope", 1, NextRows(1));
  EXPECT_EQ(ingest.status, ClientStatus::kServerError);
  EXPECT_NE(ingest.error.find("unknown online dataset"), std::string::npos);

  ingest = client.Ingest("stream", 2, NextRows(1));  // 5 doubles, 2 rows.
  EXPECT_EQ(ingest.status, ClientStatus::kServerError);

  ingest = client.Ingest("stream", 1, std::vector<double>(3, 0.0));
  EXPECT_EQ(ingest.status, ClientStatus::kServerError);
  EXPECT_NE(ingest.error.find("width mismatch"), std::string::npos);

  ingest = client.Ingest("stream", 0, {});
  EXPECT_EQ(ingest.status, ClientStatus::kServerError);
  EXPECT_NE(ingest.error.find("empty ingest"), std::string::npos);

  // Window still empty: scoring and explaining refuse.
  ExplainClient::OnlineScoreReply score =
      client.OnlineScore("stream", "LODA", Subspace({0}));
  EXPECT_EQ(score.status, ClientStatus::kServerError);
  EXPECT_NE(score.error.find("window below minimum"), std::string::npos);

  ASSERT_TRUE(client.Ingest("stream", 32, NextRows(32)).ok());
  score = client.OnlineScore("stream", "nope", Subspace({0}));
  EXPECT_EQ(score.status, ClientStatus::kServerError);
  EXPECT_NE(score.error.find("unknown online detector"), std::string::npos);

  score = client.OnlineScore("stream", "LODA", Subspace({99}));
  EXPECT_EQ(score.status, ClientStatus::kServerError);
  EXPECT_NE(score.error.find("out of range"), std::string::npos);

  ExplainClient::OnlineExplainReply explain =
      client.OnlineExplain("stream", "LODA", "nope", 0, 2);
  EXPECT_EQ(explain.status, ClientStatus::kServerError);
  EXPECT_NE(explain.error.find("unknown explainer"), std::string::npos);

  explain = client.OnlineExplain("stream", "LODA", "Beam", 9999, 2);
  EXPECT_EQ(explain.status, ClientStatus::kServerError);
  EXPECT_NE(explain.error.find("point index"), std::string::npos);

  explain = client.OnlineExplain("stream", "LODA", "Beam", 0, 1);
  EXPECT_EQ(explain.status, ClientStatus::kServerError);
  EXPECT_NE(explain.error.find("target_dim"), std::string::npos);
}

TEST_F(OnlineServeTest, StatsServesOnlineSection) {
  StartServer();
  ExplainClient client = MakeClient();
  ASSERT_TRUE(client.Ingest("stream", 32, NextRows(32)).ok());
  ASSERT_TRUE(client.OnlineScore("stream", "LODA", Subspace()).ok());

  const ExplainClient::StatsReply stats = client.Stats();
  ASSERT_TRUE(stats.ok()) << stats.error;
  EXPECT_NE(stats.json.find("\"online\""), std::string::npos);
  EXPECT_NE(stats.json.find("\"stream\""), std::string::npos);
  EXPECT_NE(stats.json.find("\"total_ingested\":32"), std::string::npos);
  EXPECT_NE(stats.json.find("\"stale_serves\""), std::string::npos);
  EXPECT_NE(stats.json.find("\"drift_events\""), std::string::npos);
}

TEST_F(OnlineServeTest, ServedScoresStayValidAcrossAdvances) {
  StartServer();
  ExplainClient client = MakeClient();
  ASSERT_TRUE(client.Ingest("stream", 64, NextRows(64)).ok());

  // Interleave ingest and scoring; every reply must label its epoch and
  // match the in-process recompute for that window.
  for (int round = 0; round < 4; ++round) {
    const ExplainClient::OnlineScoreReply wire =
        client.OnlineScore("stream", "LODA", Subspace({0, 1}));
    ASSERT_TRUE(wire.ok()) << wire.error;
    EXPECT_EQ(wire.epoch, dataset_->epoch());
    ASSERT_TRUE(client.Ingest("stream", 16, NextRows(16)).ok());
  }
  EXPECT_EQ(dataset_->epoch(), 8u);
}

}  // namespace
}  // namespace subex
