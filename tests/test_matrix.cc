#include "common/matrix.h"

#include <gtest/gtest.h>

#include <vector>

namespace subex {
namespace {

TEST(MatrixTest, DefaultIsEmpty) {
  Matrix m;
  EXPECT_EQ(m.rows(), 0u);
  EXPECT_EQ(m.cols(), 0u);
  EXPECT_TRUE(m.empty());
}

TEST(MatrixTest, ZeroInitialized) {
  Matrix m(3, 4);
  EXPECT_EQ(m.rows(), 3u);
  EXPECT_EQ(m.cols(), 4u);
  for (std::size_t r = 0; r < 3; ++r) {
    for (std::size_t c = 0; c < 4; ++c) EXPECT_EQ(m(r, c), 0.0);
  }
}

TEST(MatrixTest, InitializerListLayout) {
  Matrix m = {{1.0, 2.0}, {3.0, 4.0}, {5.0, 6.0}};
  EXPECT_EQ(m.rows(), 3u);
  EXPECT_EQ(m.cols(), 2u);
  EXPECT_EQ(m(0, 1), 2.0);
  EXPECT_EQ(m(2, 0), 5.0);
}

TEST(MatrixTest, ElementWriteReadRoundTrip) {
  Matrix m(2, 2);
  m(1, 0) = 7.5;
  EXPECT_EQ(m(1, 0), 7.5);
  EXPECT_EQ(m(0, 0), 0.0);
}

TEST(MatrixTest, RowSpanIsView) {
  Matrix m = {{1.0, 2.0, 3.0}, {4.0, 5.0, 6.0}};
  const auto row = m.Row(1);
  ASSERT_EQ(row.size(), 3u);
  EXPECT_EQ(row[0], 4.0);
  EXPECT_EQ(row[2], 6.0);
  m(1, 2) = 9.0;
  EXPECT_EQ(row[2], 9.0);  // Same storage.
}

TEST(MatrixTest, ColumnCopies) {
  Matrix m = {{1.0, 2.0}, {3.0, 4.0}, {5.0, 6.0}};
  const std::vector<double> col = m.Column(1);
  EXPECT_EQ(col, (std::vector<double>{2.0, 4.0, 6.0}));
}

TEST(MatrixTest, AppendRowGrowsAndSetsWidth) {
  Matrix m;
  const std::vector<double> r0 = {1.0, 2.0, 3.0};
  const std::vector<double> r1 = {4.0, 5.0, 6.0};
  m.AppendRow(r0);
  EXPECT_EQ(m.cols(), 3u);
  m.AppendRow(r1);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m(1, 1), 5.0);
}

TEST(MatrixTest, SelectColumnsReorders) {
  Matrix m = {{1.0, 2.0, 3.0}, {4.0, 5.0, 6.0}};
  const std::vector<int> cols = {2, 0};
  const Matrix s = m.SelectColumns(cols);
  EXPECT_EQ(s.rows(), 2u);
  EXPECT_EQ(s.cols(), 2u);
  EXPECT_EQ(s(0, 0), 3.0);
  EXPECT_EQ(s(0, 1), 1.0);
  EXPECT_EQ(s(1, 0), 6.0);
}

TEST(MatrixTest, SelectRowsReorders) {
  Matrix m = {{1.0, 2.0}, {3.0, 4.0}, {5.0, 6.0}};
  const std::vector<int> rows = {2, 2, 0};
  const Matrix s = m.SelectRows(rows);
  EXPECT_EQ(s.rows(), 3u);
  EXPECT_EQ(s(0, 0), 5.0);
  EXPECT_EQ(s(1, 0), 5.0);
  EXPECT_EQ(s(2, 1), 2.0);
}

TEST(MatrixTest, EqualityIsElementWise) {
  Matrix a = {{1.0, 2.0}};
  Matrix b = {{1.0, 2.0}};
  Matrix c = {{1.0, 2.5}};
  EXPECT_TRUE(a == b);
  EXPECT_FALSE(a == c);
}

TEST(MatrixTest, SquaredDistanceRestrictedToFeatures) {
  Matrix m = {{0.0, 0.0, 10.0}, {3.0, 4.0, -10.0}};
  const std::vector<int> sub = {0, 1};
  EXPECT_DOUBLE_EQ(SquaredDistance(m, 0, 1, sub), 25.0);
  const std::vector<int> all = {0, 1, 2};
  EXPECT_DOUBLE_EQ(SquaredDistance(m, 0, 1, all), 425.0);
  EXPECT_DOUBLE_EQ(SquaredDistance(m, 0, 0, all), 0.0);
}

}  // namespace
}  // namespace subex
