#include "stats/special_functions.h"

#include <gtest/gtest.h>

#include <cmath>

namespace subex {
namespace {

constexpr double kPi = 3.14159265358979323846;

TEST(IncompleteBetaTest, BoundaryValues) {
  EXPECT_EQ(RegularizedIncompleteBeta(2.0, 3.0, 0.0), 0.0);
  EXPECT_EQ(RegularizedIncompleteBeta(2.0, 3.0, 1.0), 1.0);
}

TEST(IncompleteBetaTest, UniformCase) {
  // I_x(1, 1) = x.
  for (double x : {0.1, 0.25, 0.5, 0.75, 0.9}) {
    EXPECT_NEAR(RegularizedIncompleteBeta(1.0, 1.0, x), x, 1e-12);
  }
}

TEST(IncompleteBetaTest, ClosedFormA1) {
  // I_x(1, b) = 1 - (1-x)^b.
  for (double b : {0.5, 2.0, 7.0}) {
    for (double x : {0.2, 0.6, 0.95}) {
      EXPECT_NEAR(RegularizedIncompleteBeta(1.0, b, x),
                  1.0 - std::pow(1.0 - x, b), 1e-10);
    }
  }
}

TEST(IncompleteBetaTest, ClosedFormB1) {
  // I_x(a, 1) = x^a.
  for (double a : {0.5, 3.0, 10.0}) {
    for (double x : {0.1, 0.5, 0.8}) {
      EXPECT_NEAR(RegularizedIncompleteBeta(a, 1.0, x), std::pow(x, a),
                  1e-10);
    }
  }
}

TEST(IncompleteBetaTest, SymmetryIdentity) {
  // I_x(a, b) = 1 - I_{1-x}(b, a).
  for (double a : {0.7, 2.5, 6.0}) {
    for (double b : {1.3, 4.0}) {
      for (double x : {0.15, 0.5, 0.85}) {
        EXPECT_NEAR(RegularizedIncompleteBeta(a, b, x),
                    1.0 - RegularizedIncompleteBeta(b, a, 1.0 - x), 1e-10);
      }
    }
  }
}

TEST(IncompleteBetaTest, MonotoneInX) {
  double prev = 0.0;
  for (double x = 0.05; x < 1.0; x += 0.05) {
    const double v = RegularizedIncompleteBeta(2.2, 3.7, x);
    EXPECT_GE(v, prev);
    prev = v;
  }
}

TEST(StudentTCdfTest, ZeroIsHalf) {
  for (double df : {1.0, 2.0, 5.5, 30.0}) {
    EXPECT_NEAR(StudentTCdf(0.0, df), 0.5, 1e-12);
  }
}

TEST(StudentTCdfTest, CauchyClosedForm) {
  // df=1 is the Cauchy distribution: F(t) = 1/2 + atan(t)/pi.
  for (double t : {-3.0, -0.5, 0.7, 2.0, 10.0}) {
    EXPECT_NEAR(StudentTCdf(t, 1.0), 0.5 + std::atan(t) / kPi, 1e-10);
  }
}

TEST(StudentTCdfTest, DfTwoClosedForm) {
  // df=2: F(t) = 1/2 + t / (2 sqrt(2 + t^2)).
  for (double t : {-4.0, -1.0, 0.3, 1.5, 6.0}) {
    EXPECT_NEAR(StudentTCdf(t, 2.0),
                0.5 + t / (2.0 * std::sqrt(2.0 + t * t)), 1e-10);
  }
}

TEST(StudentTCdfTest, LargeDfApproachesNormal) {
  for (double t : {-2.0, -1.0, 0.5, 1.96}) {
    EXPECT_NEAR(StudentTCdf(t, 1e6), NormalCdf(t), 1e-4);
  }
}

TEST(StudentTCdfTest, SymmetricTails) {
  EXPECT_NEAR(StudentTCdf(1.7, 8.0) + StudentTCdf(-1.7, 8.0), 1.0, 1e-12);
}

TEST(StudentTCdfTest, InfinityHandled) {
  EXPECT_EQ(StudentTCdf(INFINITY, 5.0), 1.0);
  EXPECT_EQ(StudentTCdf(-INFINITY, 5.0), 0.0);
}

TEST(StudentTPValueTest, TwoSidedMatchesCdf) {
  const double t = 2.3;
  const double df = 11.0;
  EXPECT_NEAR(StudentTTwoSidedPValue(t, df),
              2.0 * (1.0 - StudentTCdf(t, df)), 1e-10);
  EXPECT_NEAR(StudentTTwoSidedPValue(-t, df), StudentTTwoSidedPValue(t, df),
              1e-12);
}

TEST(StudentTPValueTest, ZeroStatisticGivesOne) {
  EXPECT_NEAR(StudentTTwoSidedPValue(0.0, 9.0), 1.0, 1e-12);
}

TEST(KolmogorovTest, KnownQuantiles) {
  // Standard critical values of the Kolmogorov distribution.
  EXPECT_NEAR(KolmogorovComplementaryCdf(1.2238), 0.10, 5e-3);
  EXPECT_NEAR(KolmogorovComplementaryCdf(1.3581), 0.05, 5e-3);
  EXPECT_NEAR(KolmogorovComplementaryCdf(1.6276), 0.01, 2e-3);
}

TEST(KolmogorovTest, Bounds) {
  EXPECT_EQ(KolmogorovComplementaryCdf(0.0), 1.0);
  EXPECT_EQ(KolmogorovComplementaryCdf(-1.0), 1.0);
  EXPECT_NEAR(KolmogorovComplementaryCdf(5.0), 0.0, 1e-12);
}

TEST(KolmogorovTest, MonotoneDecreasing) {
  double prev = 1.0;
  for (double x = 0.1; x < 3.0; x += 0.1) {
    const double q = KolmogorovComplementaryCdf(x);
    EXPECT_LE(q, prev + 1e-12);
    prev = q;
  }
}

TEST(NormalCdfTest, KnownValues) {
  EXPECT_NEAR(NormalCdf(0.0), 0.5, 1e-12);
  EXPECT_NEAR(NormalCdf(1.959963985), 0.975, 1e-6);
  EXPECT_NEAR(NormalCdf(-1.0), 0.1586552539, 1e-8);
}

}  // namespace
}  // namespace subex
