// Tests of the detectors beyond the paper's core trio: kNN-distance
// (classic distance-based family), exact ABOD (approximation reference for
// Fast ABOD), and LODA (the paper's §6 stream-ready candidate).

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "common/topk.h"
#include "core/metrics.h"
#include "detect/exact_abod.h"
#include "detect/fast_abod.h"
#include "detect/knn_distance.h"
#include "detect/loda.h"

namespace subex {
namespace {

Dataset BlobWithOutlier(int n, std::uint64_t seed) {
  Rng rng(seed);
  Matrix m(n, 3);
  for (int p = 0; p < n - 1; ++p) {
    for (int f = 0; f < 3; ++f) m(p, f) = rng.Gaussian(0.5, 0.06);
  }
  m(n - 1, 0) = 0.95;
  m(n - 1, 1) = 0.05;
  m(n - 1, 2) = 0.95;
  return Dataset(std::move(m), {n - 1});
}

TEST(KnnDistanceTest, OutlierTopRankedBothAggregations) {
  const Dataset d = BlobWithOutlier(150, 1);
  for (auto agg : {KnnDistance::Aggregation::kMax,
                   KnnDistance::Aggregation::kMean}) {
    const KnnDistance det(10, agg);
    const std::vector<double> scores = det.Score(d, Subspace());
    EXPECT_EQ(TopKIndices(scores, 1).front(), 149);
  }
}

TEST(KnnDistanceTest, MaxAggregationIsKthDistance) {
  Matrix m = {{0.0}, {1.0}, {3.0}, {10.0}};
  const Dataset d(std::move(m));
  const KnnDistance det(2, KnnDistance::Aggregation::kMax);
  const std::vector<double> scores = det.Score(d, Subspace({0}));
  EXPECT_DOUBLE_EQ(scores[0], 3.0);   // Neighbors of 0: 1 (d=1), 3 (d=3).
  EXPECT_DOUBLE_EQ(scores[3], 9.0);   // Neighbors of 10: 3 (7), 1 (9).
}

TEST(KnnDistanceTest, MeanAggregationAverages) {
  Matrix m = {{0.0}, {1.0}, {3.0}, {10.0}};
  const Dataset d(std::move(m));
  const KnnDistance det(2, KnnDistance::Aggregation::kMean);
  const std::vector<double> scores = det.Score(d, Subspace({0}));
  EXPECT_DOUBLE_EQ(scores[0], 2.0);  // (1 + 3) / 2.
}

TEST(KnnDistanceTest, MissesLocalDensityOutlier) {
  // The canonical weakness vs LOF: a point near a dense cluster but inside
  // the global distance scale of a sparse cluster is not distance-extreme.
  Rng rng(2);
  Matrix m(121, 2);
  for (int p = 0; p < 60; ++p) {
    m(p, 0) = rng.Gaussian(0.0, 0.01);
    m(p, 1) = rng.Gaussian(0.0, 0.01);
  }
  for (int p = 60; p < 120; ++p) {
    m(p, 0) = rng.Gaussian(4.0, 1.0);
    m(p, 1) = rng.Gaussian(4.0, 1.0);
  }
  m(120, 0) = 0.3;
  m(120, 1) = 0.3;
  const Dataset d(std::move(m));
  const KnnDistance det(10, KnnDistance::Aggregation::kMean);
  const std::vector<double> scores = det.Score(d, Subspace());
  // Several sparse-cluster points out-distance the local outlier.
  EXPECT_NE(TopKIndices(scores, 1).front(), 120);
}

TEST(ExactAbodTest, OutlierTopRanked) {
  const Dataset d = BlobWithOutlier(80, 3);
  const ExactAbod det;
  const std::vector<double> scores = det.Score(d, Subspace());
  EXPECT_EQ(TopKIndices(scores, 1).front(), 79);
}

TEST(ExactAbodTest, FastAbodApproximatesExactRanking) {
  Rng rng(4);
  Matrix m(100, 2);
  for (int p = 0; p < 95; ++p) {
    m(p, 0) = rng.Gaussian(0.5, 0.1);
    m(p, 1) = rng.Gaussian(0.5, 0.1);
  }
  std::vector<int> outliers;
  for (int p = 95; p < 100; ++p) {
    m(p, 0) = 0.5 + (rng.Uniform() < 0.5 ? -0.45 : 0.45);
    m(p, 1) = 0.5 + (rng.Uniform() < 0.5 ? -0.45 : 0.45);
    outliers.push_back(p);
  }
  const Dataset d(std::move(m), outliers);
  const std::vector<double> exact = ExactAbod().Score(d, Subspace());
  const std::vector<double> fast = FastAbod(10).Score(d, Subspace());
  std::vector<bool> labels(100, false);
  for (int p : outliers) labels[p] = true;
  // Both must separate the planted outliers cleanly.
  EXPECT_GT(RocAuc(exact, labels), 0.97);
  EXPECT_GT(RocAuc(fast, labels), 0.97);
}

TEST(ExactAbodTest, AllScoresFinite) {
  const Dataset d = BlobWithOutlier(60, 5);
  for (double s : ExactAbod().Score(d, Subspace())) {
    EXPECT_TRUE(std::isfinite(s));
  }
}

Loda::Options FastLodaOptions() {
  Loda::Options options;
  options.num_projections = 60;
  options.seed = 7;
  return options;
}

TEST(LodaTest, OutlierTopRanked) {
  const Dataset d = BlobWithOutlier(300, 6);
  const Loda loda(FastLodaOptions());
  const std::vector<double> scores = loda.Score(d, Subspace());
  EXPECT_EQ(TopKIndices(scores, 1).front(), 299);
}

TEST(LodaTest, SeparatesContamination) {
  Rng rng(8);
  Matrix m(400, 4);
  std::vector<int> outliers;
  for (int p = 0; p < 400; ++p) {
    const bool out = p >= 380;
    for (int f = 0; f < 4; ++f) {
      m(p, f) = out ? 0.5 + (rng.Uniform() < 0.5 ? -1 : 1) * rng.Uniform(0.3, 0.45)
                    : rng.Gaussian(0.5, 0.05);
    }
    if (out) outliers.push_back(p);
  }
  const Dataset d(std::move(m), outliers);
  const Loda loda(FastLodaOptions());
  std::vector<bool> labels(400, false);
  for (int p : outliers) labels[p] = true;
  EXPECT_GT(RocAuc(loda.Score(d, Subspace()), labels), 0.95);
}

TEST(LodaTest, DeterministicPerSubspace) {
  const Dataset d = BlobWithOutlier(100, 9);
  const Loda loda(FastLodaOptions());
  EXPECT_EQ(loda.Score(d, Subspace({0, 1})), loda.Score(d, Subspace({0, 1})));
  EXPECT_NE(loda.Score(d, Subspace({0, 1})), loda.Score(d, Subspace({1, 2})));
}

TEST(LodaTest, SingleFeatureSubspaceWorks) {
  const Dataset d = BlobWithOutlier(100, 10);
  const std::vector<double> scores = Loda(FastLodaOptions()).Score(d, Subspace({0}));
  EXPECT_EQ(scores.size(), 100u);
  for (double s : scores) EXPECT_TRUE(std::isfinite(s));
}

TEST(LodaTest, ExplicitBinCountHonoured) {
  const Dataset d = BlobWithOutlier(100, 11);
  Loda::Options options = FastLodaOptions();
  options.num_bins = 8;
  const std::vector<double> scores = Loda(options).Score(d, Subspace());
  for (double s : scores) EXPECT_TRUE(std::isfinite(s));
}

TEST(LodaTest, ConstantDataDoesNotCrash) {
  Matrix m(50, 2);
  for (int p = 0; p < 50; ++p) {
    m(p, 0) = 1.0;
    m(p, 1) = 1.0;
  }
  const Dataset d(std::move(m));
  for (double s : Loda(FastLodaOptions()).Score(d, Subspace())) {
    EXPECT_TRUE(std::isfinite(s));
  }
}

}  // namespace
}  // namespace subex
