#include "explain/hics.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "common/rng.h"
#include "data/generators.h"
#include "detect/lof.h"

namespace subex {
namespace {

Hics::Options FastOptions() {
  Hics::Options options;
  options.candidate_cutoff = 50;
  options.mc_iterations = 40;
  options.seed = 3;
  return options;
}

// Correlated pair vs. independent pair: contrast must separate them.
TEST(HicsContrastTest, CorrelatedPairBeatsIndependentPair) {
  Rng rng(1);
  Matrix m(400, 4);
  for (int p = 0; p < 400; ++p) {
    const double t = rng.Uniform();
    m(p, 0) = t;
    m(p, 1) = 0.8 * t + rng.Gaussian(0.0, 0.02);  // Correlated with f0.
    m(p, 2) = rng.Uniform();                      // Independent.
    m(p, 3) = rng.Uniform();                      // Independent.
  }
  const Dataset d(std::move(m));
  const Hics hics(FastOptions());
  const double correlated = hics.Contrast(d, Subspace({0, 1}));
  const double independent = hics.Contrast(d, Subspace({2, 3}));
  EXPECT_GT(correlated, 0.3);
  EXPECT_LT(independent, 0.1);
  EXPECT_LT(independent, correlated - 0.2);
}

TEST(HicsContrastTest, DeterministicPerSubspace) {
  const SyntheticDataset d = GenerateFigure1Dataset(2, 300);
  const Hics hics(FastOptions());
  EXPECT_DOUBLE_EQ(hics.Contrast(d.dataset, Subspace({0, 1})),
                   hics.Contrast(d.dataset, Subspace({0, 1})));
}

TEST(HicsContrastTest, ContrastWithinUnitInterval) {
  const SyntheticDataset d = GenerateFigure1Dataset(3, 300);
  const Hics hics(FastOptions());
  for (const Subspace& s :
       {Subspace({0, 1}), Subspace({0, 2}), Subspace({0, 1, 2})}) {
    const double c = hics.Contrast(d.dataset, s);
    EXPECT_GE(c, 0.0);
    EXPECT_LE(c, 1.0);
  }
}

TEST(HicsContrastTest, KsVariantAlsoSeparates) {
  Rng rng(4);
  Matrix m(400, 4);
  for (int p = 0; p < 400; ++p) {
    const double t = rng.Uniform();
    m(p, 0) = t;
    m(p, 1) = t * t + rng.Gaussian(0.0, 0.02);
    m(p, 2) = rng.Uniform();
    m(p, 3) = rng.Uniform();
  }
  const Dataset d(std::move(m));
  Hics::Options options = FastOptions();
  options.test = TwoSampleTestKind::kKolmogorovSmirnov;
  const Hics hics(options);
  EXPECT_GT(hics.Contrast(d, Subspace({0, 1})),
            hics.Contrast(d, Subspace({2, 3})) + 0.2);
}

TEST(HicsSummarizeTest, FindsPlantedSubspacesOnSubspaceOutliers) {
  HicsGeneratorConfig config;
  config.num_points = 400;
  config.subspace_dims = {2, 2, 3};
  config.seed = 17;
  const SyntheticDataset d = GenerateHicsDataset(config);
  const Lof lof(15);
  const Hics hics(FastOptions());
  const RankedSubspaces summary =
      hics.Summarize(d.dataset, lof, d.dataset.outlier_indices(), 2);
  ASSERT_FALSE(summary.empty());
  // Both planted 2d subspaces must appear in the summary, within the top
  // ranks (detector-ranked).
  for (const Subspace& planted : d.relevant_subspaces) {
    if (planted.size() != 2) continue;
    const auto it = std::find(summary.subspaces.begin(),
                              summary.subspaces.end(), planted);
    ASSERT_NE(it, summary.subspaces.end())
        << "missing " << planted.ToString();
    EXPECT_LT(it - summary.subspaces.begin(), 5);
  }
}

TEST(HicsSummarizeTest, FindsPlantedThreeDimensionalSubspace) {
  HicsGeneratorConfig config;
  config.num_points = 400;
  config.subspace_dims = {3, 2, 2};
  config.seed = 19;
  const SyntheticDataset d = GenerateHicsDataset(config);
  const Lof lof(15);
  const Hics hics(FastOptions());
  const RankedSubspaces summary =
      hics.Summarize(d.dataset, lof, d.dataset.outlier_indices(), 3);
  const Subspace* planted = nullptr;
  for (const Subspace& s : d.relevant_subspaces) {
    if (s.size() == 3) planted = &s;
  }
  ASSERT_NE(planted, nullptr);
  const auto it = std::find(summary.subspaces.begin(),
                            summary.subspaces.end(), *planted);
  ASSERT_NE(it, summary.subspaces.end());
  EXPECT_LT(it - summary.subspaces.begin(), 10);
}

TEST(HicsSummarizeTest, ReturnsOnlyTargetDimensionality) {
  const SyntheticDataset d = GenerateFigure1Dataset(5, 200);
  const Lof lof(15);
  const Hics hics(FastOptions());
  const RankedSubspaces summary =
      hics.Summarize(d.dataset, lof, d.dataset.outlier_indices(), 2);
  for (const Subspace& s : summary.subspaces) EXPECT_EQ(s.size(), 2u);
}

TEST(HicsSummarizeTest, RespectsMaxResults) {
  const SyntheticDataset d = GenerateFigure1Dataset(6, 200);
  const Lof lof(15);
  Hics::Options options = FastOptions();
  options.max_results = 2;
  const Hics hics(options);
  EXPECT_LE(
      hics.Summarize(d.dataset, lof, d.dataset.outlier_indices(), 2).size(),
      2u);
}

TEST(HicsSummarizeTest, Deterministic) {
  const SyntheticDataset d = GenerateFigure1Dataset(7, 200);
  const Lof lof(15);
  const Hics hics(FastOptions());
  const RankedSubspaces a =
      hics.Summarize(d.dataset, lof, d.dataset.outlier_indices(), 2);
  const RankedSubspaces b =
      hics.Summarize(d.dataset, lof, d.dataset.outlier_indices(), 2);
  EXPECT_EQ(a.subspaces, b.subspaces);
}


TEST(HicsSummarizeTest, ContrastRankingPrefersExactSubspaces) {
  HicsGeneratorConfig config;
  config.num_points = 400;
  config.subspace_dims = {2, 2, 3};
  config.seed = 29;
  const SyntheticDataset d = GenerateHicsDataset(config);
  const Lof lof(15);
  Hics::Options options = FastOptions();
  options.ranking = Hics::Ranking::kContrast;
  const Hics hics(options);
  const RankedSubspaces summary =
      hics.Summarize(d.dataset, lof, d.dataset.outlier_indices(), 3);
  ASSERT_FALSE(summary.empty());
  // Contrast ranking must keep the planted 3d subspace in the summary's
  // upper region (it ties with correlated augmentations, so the exact top
  // position is not guaranteed -- see the HiCS ablation bench).
  const Subspace* planted = nullptr;
  for (const Subspace& s : d.relevant_subspaces) {
    if (s.size() == 3) planted = &s;
  }
  ASSERT_NE(planted, nullptr);
  const auto it = std::find(summary.subspaces.begin(),
                            summary.subspaces.end(), *planted);
  ASSERT_NE(it, summary.subspaces.end());
  EXPECT_LT(it - summary.subspaces.begin(), 15);
}

}  // namespace
}  // namespace subex
