#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <string>

#include "common/json.h"

namespace subex {
namespace {

std::string Escaped(std::string_view s) {
  std::string out;
  AppendJsonString(out, s);
  return out;
}

// --------------------------------------------------------------------------
// AppendJsonString escaping.

TEST(JsonStringTest, PlainTextPassesThroughQuoted) {
  EXPECT_EQ(Escaped("hello"), "\"hello\"");
  EXPECT_EQ(Escaped(""), "\"\"");
}

TEST(JsonStringTest, QuotesAndBackslashesAreEscaped) {
  EXPECT_EQ(Escaped("say \"hi\""), "\"say \\\"hi\\\"\"");
  EXPECT_EQ(Escaped("a\\b"), "\"a\\\\b\"");
  // A backslash followed by a quote must stay two separate escapes.
  EXPECT_EQ(Escaped("\\\""), "\"\\\\\\\"\"");
}

TEST(JsonStringTest, NamedControlCharactersUseShortEscapes) {
  EXPECT_EQ(Escaped("a\nb"), "\"a\\nb\"");
  EXPECT_EQ(Escaped("a\rb"), "\"a\\rb\"");
  EXPECT_EQ(Escaped("a\tb"), "\"a\\tb\"");
}

TEST(JsonStringTest, OtherControlCharactersUseUnicodeEscapes) {
  EXPECT_EQ(Escaped(std::string_view("\x01", 1)), "\"\\u0001\"");
  EXPECT_EQ(Escaped(std::string_view("\x1f", 1)), "\"\\u001f\"");
  // NUL embedded in a string_view is a control character, not a terminator.
  EXPECT_EQ(Escaped(std::string_view("a\0b", 3)), "\"a\\u0000b\"");
}

TEST(JsonStringTest, NonAsciiBytesPassThroughVerbatim) {
  // UTF-8 payloads are already valid JSON string content.
  EXPECT_EQ(Escaped("µ-sign"), "\"µ-sign\"");
}

// --------------------------------------------------------------------------
// JsonNumber.

TEST(JsonNumberTest, FiniteValuesRoundTrip) {
  EXPECT_EQ(JsonNumber(0.0), "0");
  EXPECT_EQ(JsonNumber(1.5), "1.5");
  EXPECT_EQ(JsonNumber(-4.0), "-4");
  EXPECT_EQ(JsonNumber(1e20), "1e+20");
}

TEST(JsonNumberTest, NonFiniteValuesBecomeNull) {
  EXPECT_EQ(JsonNumber(std::numeric_limits<double>::quiet_NaN()), "null");
  EXPECT_EQ(JsonNumber(std::numeric_limits<double>::infinity()), "null");
  EXPECT_EQ(JsonNumber(-std::numeric_limits<double>::infinity()), "null");
}

// --------------------------------------------------------------------------
// JsonObject builder.

TEST(JsonObjectTest, EmptyObjectIsValid) {
  EXPECT_EQ(JsonObject().Build(), "{}");
}

TEST(JsonObjectTest, KeysKeepInsertionOrderAndTypes) {
  const std::string json = JsonObject()
                               .Add("name", "LOF")
                               .Add("hits", std::uint64_t{12})
                               .Add("rate", 0.5)
                               .Add("enabled", true)
                               .Build();
  EXPECT_EQ(json,
            "{\"name\":\"LOF\",\"hits\":12,\"rate\":0.5,\"enabled\":true}");
}

TEST(JsonObjectTest, KeysAndStringValuesAreEscaped) {
  const std::string json =
      JsonObject().Add("a\"b", "line\nbreak").Build();
  EXPECT_EQ(json, "{\"a\\\"b\":\"line\\nbreak\"}");
}

TEST(JsonObjectTest, NonFiniteDoublesSerializeAsNull) {
  const std::string json =
      JsonObject()
          .Add("nan", std::numeric_limits<double>::quiet_NaN())
          .Add("inf", std::numeric_limits<double>::infinity())
          .Build();
  EXPECT_EQ(json, "{\"nan\":null,\"inf\":null}");
}

TEST(JsonObjectTest, AddRawNestsBuiltObjects) {
  const std::string inner = JsonObject().Add("p50_ms", 1.25).Build();
  const std::string middle =
      JsonObject().AddRaw("latency", inner).Add("count", 3).Build();
  const std::string outer =
      JsonObject().AddRaw("metrics", middle).Build();
  EXPECT_EQ(outer,
            "{\"metrics\":{\"latency\":{\"p50_ms\":1.25},\"count\":3}}");
}

TEST(JsonObjectTest, AddRawAcceptsArraysAndScalars) {
  const std::string json = JsonObject()
                               .AddRaw("rows", "[1,2,3]")
                               .AddRaw("null_field", "null")
                               .Build();
  EXPECT_EQ(json, "{\"rows\":[1,2,3],\"null_field\":null}");
}

}  // namespace
}  // namespace subex
