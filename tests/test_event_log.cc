#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "common/json.h"
#include "obs/event_log.h"

namespace subex {
namespace {

#ifndef SUBEX_OBS_DISABLED

EventLogOptions DeterministicOptions(std::size_t ring, double burst) {
  EventLogOptions options;
  options.ring_capacity = ring;
  options.tokens_per_second = 0.0;  // No refill: only the burst passes.
  options.burst = burst;
  return options;
}

TEST(EventLogTest, EmitStoresRecordInOrder) {
  EventLog log(DeterministicOptions(8, 4));
  EXPECT_TRUE(log.Emit(EventSeverity::kWarn, "serve.busy", "{\"fd\":3}"));
  EXPECT_TRUE(log.Emit(EventSeverity::kInfo, "serve.idle_timeout"));
  const std::vector<EventRecord> events = log.Snapshot();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].key, "serve.busy");
  EXPECT_EQ(events[0].severity, EventSeverity::kWarn);
  EXPECT_EQ(events[0].fields_json, "{\"fd\":3}");
  EXPECT_EQ(events[1].key, "serve.idle_timeout");
  EXPECT_LT(events[0].sequence, events[1].sequence);
  EXPECT_EQ(log.emitted(), 2u);
  EXPECT_EQ(log.suppressed(), 0u);
}

TEST(EventLogTest, TokenBucketSuppressesPerKey) {
  EventLog log(DeterministicOptions(32, 2));
  // Two pass per key, the rest are suppressed — independently per key.
  for (int i = 0; i < 5; ++i) log.Emit(EventSeverity::kWarn, "a");
  for (int i = 0; i < 5; ++i) log.Emit(EventSeverity::kWarn, "b");
  EXPECT_EQ(log.emitted(), 4u);
  EXPECT_EQ(log.suppressed(), 6u);
  EXPECT_EQ(log.Snapshot().size(), 4u);
}

TEST(EventLogTest, RefillAdmitsAgainAfterTime) {
  EventLogOptions options;
  options.ring_capacity = 8;
  options.tokens_per_second = 1000.0;  // 1 token per ms.
  options.burst = 1.0;
  EventLog log(options);
  EXPECT_TRUE(log.Emit(EventSeverity::kInfo, "k"));
  EXPECT_FALSE(log.Emit(EventSeverity::kInfo, "k"));  // Bucket empty.
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_TRUE(log.Emit(EventSeverity::kInfo, "k"));  // Refilled.
}

TEST(EventLogTest, RingKeepsNewestEvents) {
  EventLog log(DeterministicOptions(3, 100));
  for (int i = 0; i < 7; ++i) {
    log.Emit(EventSeverity::kInfo, "k" + std::to_string(i));
  }
  const std::vector<EventRecord> events = log.Snapshot();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].key, "k4");  // Oldest survivor first.
  EXPECT_EQ(events[2].key, "k6");
  EXPECT_EQ(log.emitted(), 7u);  // Overwritten events still count emitted.
}

TEST(EventLogTest, JsonExportsAreValidJson) {
  EventLog log(DeterministicOptions(8, 8));
  log.Emit(EventSeverity::kError, "net.max_frame",
           "{\"frame_bytes\":9999999}");
  log.Emit(EventSeverity::kDebug, "cache.single_flight_join");
  EXPECT_TRUE(IsValidJson(log.ToJson())) << log.ToJson();
  const std::vector<EventRecord> events = log.Snapshot();
  for (const EventRecord& event : events) {
    EXPECT_TRUE(IsValidJson(event.ToJsonLine())) << event.ToJsonLine();
  }
  EXPECT_NE(log.ToJson().find("\"severity\":\"error\""), std::string::npos);
  EXPECT_NE(log.ToJson().find("\"key\":\"net.max_frame\""), std::string::npos);
  // JSON lines: one line per event, each independently parseable.
  const std::string lines = log.ToJsonLines();
  EXPECT_NE(lines.find('\n'), std::string::npos);
}

TEST(EventLogTest, SeverityNamesAreStable) {
  EXPECT_STREQ(EventSeverityName(EventSeverity::kDebug), "debug");
  EXPECT_STREQ(EventSeverityName(EventSeverity::kInfo), "info");
  EXPECT_STREQ(EventSeverityName(EventSeverity::kWarn), "warn");
  EXPECT_STREQ(EventSeverityName(EventSeverity::kError), "error");
}

TEST(EventLogTest, ClearResetsEverything) {
  EventLog log(DeterministicOptions(4, 1));
  log.Emit(EventSeverity::kInfo, "k");
  log.Emit(EventSeverity::kInfo, "k");  // Suppressed.
  log.Clear();
  EXPECT_EQ(log.emitted(), 0u);
  EXPECT_EQ(log.suppressed(), 0u);
  EXPECT_TRUE(log.Snapshot().empty());
  // Buckets reset too: the burst is available again.
  EXPECT_TRUE(log.Emit(EventSeverity::kInfo, "k"));
}

TEST(EventLogTest, ConcurrentEmittersLoseNoCounts) {
  EventLog log(DeterministicOptions(64, 1e9));
  constexpr int kThreads = 8;
  constexpr int kPerThread = 500;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&log, t] {
      for (int i = 0; i < kPerThread; ++i) {
        log.Emit(EventSeverity::kInfo, "thread." + std::to_string(t));
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(log.emitted() + log.suppressed(),
            static_cast<std::uint64_t>(kThreads) * kPerThread);
}

// --------------------------------------------------------------------------
// Slow-request capture.

TEST(SlowRequestCaptureTest, CapturesOnlyAboveThreshold) {
  SlowRequestCapture capture(/*threshold_ns=*/1000000, /*capacity=*/4);
  EXPECT_FALSE(capture.WouldCapture(999999));
  EXPECT_TRUE(capture.WouldCapture(1000000));
  capture.Capture("explain", 42, 0xabc, 2000000,
                  "{\"trace_id\":\"0x0\",\"spans\":[]}");
  EXPECT_EQ(capture.captured(), 1u);
  const std::string json = capture.ToJson();
  EXPECT_TRUE(IsValidJson(json)) << json;
  EXPECT_NE(json.find("\"label\":\"explain\""), std::string::npos);
  EXPECT_NE(json.find("\"request_id\":42"), std::string::npos);
}

TEST(SlowRequestCaptureTest, RingKeepsNewestCaptures) {
  SlowRequestCapture capture(1, 2);
  for (std::uint64_t i = 0; i < 5; ++i) {
    capture.Capture("score", i, 0, 10, "{}");
  }
  EXPECT_EQ(capture.captured(), 5u);
  const std::string json = capture.ToJson();
  // Only the two newest request ids survive in the ring.
  EXPECT_EQ(json.find("\"request_id\":2"), std::string::npos);
  EXPECT_NE(json.find("\"request_id\":3"), std::string::npos);
  EXPECT_NE(json.find("\"request_id\":4"), std::string::npos);
}

#else  // SUBEX_OBS_DISABLED

TEST(EventLogTest, DisabledBuildSuppressesEverything) {
  EventLog& log = EventLog::Global();
  EXPECT_FALSE(log.Emit(EventSeverity::kError, "anything"));
  EXPECT_EQ(log.emitted(), 0u);
  EXPECT_EQ(log.ToJson(), "{\"emitted\":0,\"suppressed\":0,\"recent\":[]}");
  SUBEX_EVENT(EventSeverity::kWarn, "noop", "{}");  // Compiles to nothing.
}

#endif  // SUBEX_OBS_DISABLED

}  // namespace
}  // namespace subex
