#include "common/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

namespace subex {
namespace {

TEST(RngTest, SameSeedSameStream) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.UniformInt(0, 1000), b.UniformInt(0, 1000));
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int differing = 0;
  for (int i = 0; i < 50; ++i) {
    if (a.UniformInt(0, 1 << 30) != b.UniformInt(0, 1 << 30)) ++differing;
  }
  EXPECT_GT(differing, 45);
}

TEST(RngTest, UniformIntInclusiveBounds) {
  Rng rng(7);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const int v = rng.UniformInt(3, 7);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 7);
    saw_lo |= (v == 3);
    saw_hi |= (v == 7);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, UniformIndexInRange) {
  Rng rng(11);
  for (int i = 0; i < 500; ++i) {
    EXPECT_LT(rng.UniformIndex(9), 9u);
  }
}

TEST(RngTest, UniformRealHalfOpen) {
  Rng rng(13);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.Uniform(2.0, 4.0);
    EXPECT_GE(v, 2.0);
    EXPECT_LT(v, 4.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 10000.0, 3.0, 0.05);
}

TEST(RngTest, GaussianMoments) {
  Rng rng(17);
  double sum = 0.0;
  double sum_sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.Gaussian(5.0, 2.0);
    sum += v;
    sum_sq += v * v;
  }
  const double mean = sum / n;
  const double var = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, 5.0, 0.1);
  EXPECT_NEAR(var, 4.0, 0.2);
}

TEST(RngTest, SampleWithoutReplacementDistinctSortedInRange) {
  Rng rng(19);
  for (int trial = 0; trial < 50; ++trial) {
    const std::vector<int> sample = rng.SampleWithoutReplacement(20, 8);
    ASSERT_EQ(sample.size(), 8u);
    EXPECT_TRUE(std::is_sorted(sample.begin(), sample.end()));
    const std::set<int> unique(sample.begin(), sample.end());
    EXPECT_EQ(unique.size(), 8u);
    EXPECT_GE(sample.front(), 0);
    EXPECT_LT(sample.back(), 20);
  }
}

TEST(RngTest, SampleWithoutReplacementFullRange) {
  Rng rng(23);
  const std::vector<int> sample = rng.SampleWithoutReplacement(5, 5);
  EXPECT_EQ(sample, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(RngTest, SampleWithoutReplacementCoversAllValues) {
  Rng rng(29);
  std::set<int> seen;
  for (int trial = 0; trial < 300; ++trial) {
    for (int v : rng.SampleWithoutReplacement(10, 3)) seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 10u);
}

TEST(RngTest, ShufflePermutes) {
  Rng rng(31);
  std::vector<int> values = {0, 1, 2, 3, 4, 5, 6, 7};
  std::vector<int> shuffled = values;
  rng.Shuffle(shuffled);
  std::vector<int> sorted = shuffled;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, values);
}

TEST(RngTest, ForkIsIndependentStream) {
  Rng parent(37);
  Rng child = parent.Fork();
  // The child must not replay the parent's stream.
  Rng parent_copy(37);
  (void)parent_copy.engine()();  // Parent consumed one draw for the fork.
  int matches = 0;
  for (int i = 0; i < 20; ++i) {
    if (child.UniformInt(0, 1 << 30) == parent_copy.UniformInt(0, 1 << 30)) {
      ++matches;
    }
  }
  EXPECT_LT(matches, 5);
}

}  // namespace
}  // namespace subex
