#include "explain/dimension_refinement.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "data/generators.h"
#include "detect/lof.h"
#include "explain/beam.h"

namespace subex {
namespace {

SyntheticDataset MakeData() {
  HicsGeneratorConfig config;
  config.num_points = 300;
  config.subspace_dims = {3, 2, 2};
  config.seed = 71;
  return GenerateHicsDataset(config);
}

// A planted outlier's relevant subspace has high dimensional gain (its
// projections are masked); the same subspace padded with junk instead of
// one of its own features has low gain.
TEST(DimensionalGainTest, RelevantSubspaceBeatsAugmentation) {
  const SyntheticDataset d = MakeData();
  const Lof lof(15);
  const Subspace* planted = nullptr;
  for (const Subspace& s : d.relevant_subspaces) {
    if (s.size() == 3) planted = &s;
  }
  ASSERT_NE(planted, nullptr);
  for (int p : d.dataset.outlier_indices()) {
    const auto& rel = d.ground_truth.RelevantFor(p);
    if (std::find(rel.begin(), rel.end(), *planted) == rel.end()) continue;
    const double gain_true = DimensionalGain(d.dataset, lof, p, *planted);
    // Augmentation: drop one planted feature, add a foreign one.
    FeatureId foreign = 0;
    while (planted->Contains(foreign)) ++foreign;
    std::vector<FeatureId> padded(planted->features().begin(),
                                  planted->features().end() - 1);
    padded.push_back(foreign);
    const double gain_padded =
        DimensionalGain(d.dataset, lof, p, Subspace(padded));
    EXPECT_GT(gain_true, 3.0) << "point " << p;
    EXPECT_GT(gain_true, gain_padded + 1.0) << "point " << p;
  }
}

TEST(DimensionalGainTest, InlierHasSmallGain) {
  const SyntheticDataset d = MakeData();
  const Lof lof(15);
  int inlier = 0;
  while (d.dataset.IsOutlier(inlier)) ++inlier;
  const double gain =
      DimensionalGain(d.dataset, lof, inlier, d.relevant_subspaces.front());
  EXPECT_LT(gain, 2.0);
}

TEST(RefineTest, PromotesTrueSubspaceInBeamOutput) {
  const SyntheticDataset d = MakeData();
  const Lof lof(15);
  Beam::Options options;
  options.beam_width = 15;
  const Beam beam(options);

  int improved = 0;
  int evaluated = 0;
  for (int p : d.dataset.outlier_indices()) {
    for (const Subspace& rel : d.ground_truth.RelevantFor(p)) {
      if (rel.size() != 3) continue;
      const RankedSubspaces raw = beam.Explain(d.dataset, lof, p, 3);
      const auto raw_it =
          std::find(raw.subspaces.begin(), raw.subspaces.end(), rel);
      if (raw_it == raw.subspaces.end()) continue;  // Beam missed entirely.
      const RankedSubspaces refined =
          RefineByDimensionalGain(d.dataset, lof, p, raw);
      const auto refined_it = std::find(refined.subspaces.begin(),
                                        refined.subspaces.end(), rel);
      ASSERT_NE(refined_it, refined.subspaces.end());
      ++evaluated;
      const auto raw_rank = raw_it - raw.subspaces.begin();
      const auto refined_rank = refined_it - refined.subspaces.begin();
      if (refined_rank <= raw_rank) ++improved;
      EXPECT_LT(refined_rank, 3) << "point " << p;
    }
  }
  ASSERT_GT(evaluated, 0);
  EXPECT_EQ(improved, evaluated);  // Never demotes the true subspace.
}

TEST(RefineTest, PreservesCandidateSet) {
  const SyntheticDataset d = MakeData();
  const Lof lof(15);
  const Beam beam;
  const int p = d.dataset.outlier_indices().front();
  const RankedSubspaces raw = beam.Explain(d.dataset, lof, p, 2);
  const RankedSubspaces refined =
      RefineByDimensionalGain(d.dataset, lof, p, raw);
  EXPECT_EQ(refined.size(), raw.size());
  std::vector<Subspace> a = raw.subspaces;
  std::vector<Subspace> b = refined.subspaces;
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  EXPECT_EQ(a, b);
}

TEST(RefineTest, TailKeptBelowRefinedHead) {
  const SyntheticDataset d = MakeData();
  const Lof lof(15);
  const Beam beam;
  const int p = d.dataset.outlier_indices().front();
  const RankedSubspaces raw = beam.Explain(d.dataset, lof, p, 2);
  DimensionRefinementOptions options;
  options.max_candidates = 2;
  const RankedSubspaces refined =
      RefineByDimensionalGain(d.dataset, lof, p, raw, options);
  ASSERT_EQ(refined.size(), raw.size());
  for (std::size_t i = 1; i < refined.scores.size(); ++i) {
    EXPECT_GE(refined.scores[i - 1], refined.scores[i]);
  }
  // Tail order preserved.
  for (std::size_t i = 2; i < raw.size(); ++i) {
    EXPECT_EQ(refined.subspaces[i], raw.subspaces[i]);
  }
}

}  // namespace
}  // namespace subex
