#include "stats/descriptive.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace subex {
namespace {

TEST(DescriptiveTest, Mean) {
  const std::vector<double> v = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(Mean(v), 2.5);
  EXPECT_DOUBLE_EQ(Mean(std::vector<double>{}), 0.0);
}

TEST(DescriptiveTest, SampleVariance) {
  const std::vector<double> v = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  // Sum of squared deviations = 32, n-1 = 7.
  EXPECT_NEAR(SampleVariance(v), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(SampleVariance(std::vector<double>{5.0}), 0.0);
}

TEST(DescriptiveTest, PopulationVariance) {
  const std::vector<double> v = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  EXPECT_NEAR(PopulationVariance(v), 4.0, 1e-12);
}

TEST(DescriptiveTest, StdDevIsSqrtOfVariance) {
  const std::vector<double> v = {1.0, 3.0, 5.0};
  EXPECT_NEAR(SampleStdDev(v), std::sqrt(SampleVariance(v)), 1e-15);
}

TEST(DescriptiveTest, MinMax) {
  const std::vector<double> v = {3.0, -1.0, 7.0, 0.0};
  EXPECT_EQ(Min(v), -1.0);
  EXPECT_EQ(Max(v), 7.0);
}

TEST(DescriptiveTest, MedianOdd) {
  const std::vector<double> v = {9.0, 1.0, 5.0};
  EXPECT_EQ(Median(v), 5.0);
}

TEST(DescriptiveTest, MedianEven) {
  const std::vector<double> v = {4.0, 1.0, 3.0, 2.0};
  EXPECT_EQ(Median(v), 2.5);
}

TEST(DescriptiveTest, MedianDoesNotReorderInput) {
  std::vector<double> v = {9.0, 1.0, 5.0};
  (void)Median(v);
  EXPECT_EQ(v, (std::vector<double>{9.0, 1.0, 5.0}));
}

TEST(DescriptiveTest, StandardizeMeanZeroUnitVariance) {
  const std::vector<double> v = {1.0, 2.0, 3.0, 4.0, 5.0};
  const std::vector<double> z = Standardize(v);
  EXPECT_NEAR(Mean(z), 0.0, 1e-12);
  EXPECT_NEAR(PopulationVariance(z), 1.0, 1e-12);
  // Order preserved.
  for (std::size_t i = 1; i < z.size(); ++i) EXPECT_GT(z[i], z[i - 1]);
}

TEST(DescriptiveTest, StandardizeConstantInputIsAllZero) {
  const std::vector<double> v = {3.0, 3.0, 3.0};
  const std::vector<double> z = Standardize(v);
  for (double x : z) EXPECT_EQ(x, 0.0);
}

TEST(DescriptiveTest, StandardizeEmpty) {
  EXPECT_TRUE(Standardize(std::vector<double>{}).empty());
}

TEST(DescriptiveTest, StandardizeIsAffineInvariantInRank) {
  const std::vector<double> v = {1.0, 5.0, 2.0, 8.0};
  std::vector<double> w;
  for (double x : v) w.push_back(3.0 * x + 10.0);
  const std::vector<double> zv = Standardize(v);
  const std::vector<double> zw = Standardize(w);
  for (std::size_t i = 0; i < v.size(); ++i) {
    EXPECT_NEAR(zv[i], zw[i], 1e-12);
  }
}

}  // namespace
}  // namespace subex
