#include "detect/fast_abod.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "common/topk.h"

namespace subex {
namespace {

Dataset BlobWithBorderOutlier(int n, std::uint64_t seed) {
  Rng rng(seed);
  Matrix m(n, 2);
  for (int p = 0; p < n - 1; ++p) {
    m(p, 0) = rng.Gaussian(0.0, 0.2);
    m(p, 1) = rng.Gaussian(0.0, 0.2);
  }
  // Far outside: all neighbors lie in a narrow angular cone.
  m(n - 1, 0) = 4.0;
  m(n - 1, 1) = 4.0;
  return Dataset(std::move(m), {n - 1});
}

TEST(FastAbodTest, OutlierGetsHighestScore) {
  const Dataset d = BlobWithBorderOutlier(100, 1);
  const FastAbod abod(10);
  const std::vector<double> scores = abod.Score(d, Subspace());
  EXPECT_EQ(TopKIndices(scores, 1).front(), 99);
}

TEST(FastAbodTest, BorderPointScoresAboveCentralPoint) {
  // Angle variance is high for points surrounded in many directions
  // (blob center) and low for border points whose neighbors all lie in a
  // narrow cone -- so the border point must outscore the central one.
  Rng rng(7);
  const int n = 120;
  Matrix m(n + 2, 2);
  for (int p = 0; p < n; ++p) {
    m(p, 0) = rng.Gaussian(0.0, 0.3);
    m(p, 1) = rng.Gaussian(0.0, 0.3);
  }
  m(n, 0) = 0.0;  // Central point.
  m(n, 1) = 0.0;
  m(n + 1, 0) = 1.5;  // Border point, ~5 sigma out.
  m(n + 1, 1) = 1.5;
  const Dataset d(std::move(m));
  const FastAbod abod(10);
  const std::vector<double> scores = abod.Score(d, Subspace());
  EXPECT_GT(scores[n + 1], scores[n]);
  EXPECT_EQ(TopKIndices(scores, 1).front(), n + 1);
}

TEST(FastAbodTest, AllScoresFinite) {
  const Dataset d = BlobWithBorderOutlier(80, 2);
  const FastAbod abod(10);
  for (double s : abod.Score(d, Subspace())) EXPECT_TRUE(std::isfinite(s));
}

TEST(FastAbodTest, DuplicatePointsHandled) {
  Matrix m(30, 2);
  Rng rng(3);
  for (int p = 0; p < 28; ++p) {
    m(p, 0) = (p % 2 == 0) ? 1.0 : 2.0;  // Many coincident points.
    m(p, 1) = (p % 2 == 0) ? 1.0 : 2.0;
  }
  m(28, 0) = 1.5;
  m(28, 1) = 1.5;
  m(29, 0) = 9.0;
  m(29, 1) = 9.0;
  const Dataset d(std::move(m));
  const FastAbod abod(10);
  const std::vector<double> scores = abod.Score(d, Subspace());
  for (double s : scores) EXPECT_TRUE(std::isfinite(s));
}

TEST(FastAbodTest, SubspaceRestriction) {
  Rng rng(4);
  Matrix m(90, 3);
  for (int p = 0; p < 90; ++p) {
    m(p, 0) = rng.Gaussian(0.0, 0.2);
    m(p, 1) = rng.Gaussian(0.0, 0.2);
    m(p, 2) = rng.Uniform();
  }
  m(89, 0) = 4.0;
  m(89, 1) = 4.0;
  const Dataset d(std::move(m));
  const FastAbod abod(10);
  const std::vector<double> in_sub = abod.Score(d, Subspace({0, 1}));
  EXPECT_EQ(TopKIndices(in_sub, 1).front(), 89);
  const std::vector<double> decoy = abod.Score(d, Subspace({2}));
  EXPECT_NE(TopKIndices(decoy, 1).front(), 89);
}

TEST(FastAbodTest, Deterministic) {
  const Dataset d = BlobWithBorderOutlier(60, 5);
  const FastAbod abod(10);
  EXPECT_EQ(abod.Score(d, Subspace()), abod.Score(d, Subspace()));
}

TEST(FastAbodTest, NameAndK) {
  const FastAbod abod(12);
  EXPECT_EQ(abod.name(), "FastABOD");
  EXPECT_EQ(abod.k(), 12);
}

}  // namespace
}  // namespace subex
