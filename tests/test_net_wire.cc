#include "net/frame.h"
#include "net/protocol.h"
#include "net/wire.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

namespace subex {
namespace {

TEST(WireTest, ScalarRoundTrip) {
  WireWriter writer;
  writer.PutU8(0xAB);
  writer.PutU16(0xBEEF);
  writer.PutU32(0xDEADBEEFu);
  writer.PutU64(0x0123456789ABCDEFull);
  writer.PutI32(-42);
  writer.PutDouble(-1234.5678);
  writer.PutString("hello");
  writer.PutDoubles({1.0, -2.5, 3.25});

  WireReader reader(writer.bytes());
  EXPECT_EQ(reader.GetU8(), 0xAB);
  EXPECT_EQ(reader.GetU16(), 0xBEEF);
  EXPECT_EQ(reader.GetU32(), 0xDEADBEEFu);
  EXPECT_EQ(reader.GetU64(), 0x0123456789ABCDEFull);
  EXPECT_EQ(reader.GetI32(), -42);
  EXPECT_EQ(reader.GetDouble(), -1234.5678);
  EXPECT_EQ(reader.GetString(), "hello");
  EXPECT_EQ(reader.GetDoubles(), (std::vector<double>{1.0, -2.5, 3.25}));
  EXPECT_TRUE(reader.AtEnd());
}

TEST(WireTest, DoubleBitPatternsSurviveExactly) {
  const std::vector<double> tricky = {
      0.0, -0.0, std::numeric_limits<double>::infinity(),
      -std::numeric_limits<double>::infinity(),
      std::numeric_limits<double>::denorm_min(),
      std::numeric_limits<double>::max(), 0.1 + 0.2};
  WireWriter writer;
  writer.PutDoubles(tricky);
  WireReader reader(writer.bytes());
  const std::vector<double> back = reader.GetDoubles();
  ASSERT_EQ(back.size(), tricky.size());
  for (std::size_t i = 0; i < tricky.size(); ++i) {
    EXPECT_EQ(std::bit_cast<std::uint64_t>(back[i]),
              std::bit_cast<std::uint64_t>(tricky[i]));
  }
  // NaN separately: EXPECT_EQ on values would fail, bits must match.
  WireWriter w2;
  w2.PutDouble(std::numeric_limits<double>::quiet_NaN());
  WireReader r2(w2.bytes());
  EXPECT_TRUE(std::isnan(r2.GetDouble()));
}

TEST(WireTest, TruncatedReadTripsStickyError) {
  WireWriter writer;
  writer.PutU32(7);
  WireReader reader(writer.bytes());
  reader.GetU64();  // 8 bytes wanted, 4 available.
  EXPECT_FALSE(reader.ok());
  EXPECT_EQ(reader.GetU32(), 0u) << "reads after an error yield zero";
  EXPECT_FALSE(reader.AtEnd());
}

TEST(WireTest, CorruptStringLengthFailsInsteadOfAllocating) {
  WireWriter writer;
  writer.PutU32(0xFFFFFFFFu);  // Claims a 4 GiB string.
  WireReader reader(writer.bytes());
  EXPECT_EQ(reader.GetString(), "");
  EXPECT_FALSE(reader.ok());
}

TEST(FrameTest, EncodePrefixesLittleEndianLength) {
  const std::vector<std::uint8_t> frame = EncodeFrame({0x11, 0x22, 0x33});
  ASSERT_EQ(frame.size(), 7u);
  EXPECT_EQ(frame[0], 3u);
  EXPECT_EQ(frame[1], 0u);
  EXPECT_EQ(frame[2], 0u);
  EXPECT_EQ(frame[3], 0u);
  EXPECT_EQ(frame[4], 0x11);
}

TEST(FrameTest, DecoderReassemblesByteByByte) {
  const std::vector<std::uint8_t> payload = {1, 2, 3, 4, 5};
  const std::vector<std::uint8_t> frame = EncodeFrame(payload);
  FrameDecoder decoder;
  std::vector<std::uint8_t> out;
  for (std::size_t i = 0; i + 1 < frame.size(); ++i) {
    decoder.Feed(&frame[i], 1);
    EXPECT_FALSE(decoder.Next(&out)) << "frame incomplete at byte " << i;
  }
  decoder.Feed(&frame.back(), 1);
  ASSERT_TRUE(decoder.Next(&out));
  EXPECT_EQ(out, payload);
  EXPECT_FALSE(decoder.Next(&out));
  EXPECT_EQ(decoder.buffered_bytes(), 0u);
}

TEST(FrameTest, DecoderHandlesPipelinedFramesInOneFeed) {
  std::vector<std::uint8_t> stream;
  for (std::uint8_t v : {10, 20, 30}) {
    const std::vector<std::uint8_t> frame = EncodeFrame({v, v});
    stream.insert(stream.end(), frame.begin(), frame.end());
  }
  FrameDecoder decoder;
  decoder.Feed(stream.data(), stream.size());
  std::vector<std::uint8_t> out;
  ASSERT_TRUE(decoder.Next(&out));
  EXPECT_EQ(out, (std::vector<std::uint8_t>{10, 10}));
  ASSERT_TRUE(decoder.Next(&out));
  EXPECT_EQ(out, (std::vector<std::uint8_t>{20, 20}));
  ASSERT_TRUE(decoder.Next(&out));
  EXPECT_EQ(out, (std::vector<std::uint8_t>{30, 30}));
  EXPECT_FALSE(decoder.Next(&out));
}

TEST(FrameTest, OversizedLengthPrefixPoisonsTheStream) {
  FrameDecoder decoder(/*max_frame_bytes=*/16);
  const std::vector<std::uint8_t> huge(17, 0xAA);
  const std::vector<std::uint8_t> frame = EncodeFrame(huge);
  decoder.Feed(frame.data(), frame.size());
  std::vector<std::uint8_t> out;
  EXPECT_FALSE(decoder.Next(&out));
  EXPECT_TRUE(decoder.error());
  // Even a subsequent valid frame is unreachable: the stream is dead.
  const std::vector<std::uint8_t> ok = EncodeFrame({1});
  decoder.Feed(ok.data(), ok.size());
  EXPECT_FALSE(decoder.Next(&out));
}

TEST(FrameTest, EmptyPayloadFrameIsValid) {
  const std::vector<std::uint8_t> frame = EncodeFrame({});
  FrameDecoder decoder;
  decoder.Feed(frame.data(), frame.size());
  std::vector<std::uint8_t> out = {9, 9};
  ASSERT_TRUE(decoder.Next(&out));
  EXPECT_TRUE(out.empty());
}

TEST(ProtocolTest, ScoreRequestRoundTrip) {
  ScoreRequest request;
  request.detector = "LOF";
  request.subspace = Subspace({3, 1, 7});
  const std::vector<std::uint8_t> payload = EncodeScoreRequest(42, request);

  WireReader reader(payload);
  MessageHeader header;
  ASSERT_TRUE(DecodeHeader(reader, &header));
  EXPECT_EQ(header.version, kProtocolVersion);
  EXPECT_EQ(header.type, MessageType::kScore);
  EXPECT_EQ(header.request_id, 42u);
  ScoreRequest back;
  ASSERT_TRUE(DecodeScoreRequest(reader, &back));
  EXPECT_EQ(back.detector, "LOF");
  EXPECT_EQ(back.subspace, Subspace({1, 3, 7}));
}

TEST(ProtocolTest, ExplainRequestRoundTrip) {
  ExplainRequest request;
  request.detector = "iForest";
  request.explainer = "Beam";
  request.point = 123;
  request.target_dim = 3;
  request.max_results = 10;
  const std::vector<std::uint8_t> payload = EncodeExplainRequest(7, request);

  WireReader reader(payload);
  MessageHeader header;
  ASSERT_TRUE(DecodeHeader(reader, &header));
  EXPECT_EQ(header.type, MessageType::kExplain);
  ExplainRequest back;
  ASSERT_TRUE(DecodeExplainRequest(reader, &back));
  EXPECT_EQ(back.detector, "iForest");
  EXPECT_EQ(back.explainer, "Beam");
  EXPECT_EQ(back.point, 123);
  EXPECT_EQ(back.target_dim, 3);
  EXPECT_EQ(back.max_results, 10u);
}

TEST(ProtocolTest, ExplainResultRoundTripPreservesRankingExactly) {
  ExplainResult result;
  result.ranking.Add(Subspace({0, 2}), 3.75);
  result.ranking.Add(Subspace({1, 4}), -0.5);
  const std::vector<std::uint8_t> payload = EncodeExplainResult(9, result);

  WireReader reader(payload);
  MessageHeader header;
  ASSERT_TRUE(DecodeHeader(reader, &header));
  EXPECT_EQ(header.type, MessageType::kExplainResult);
  EXPECT_EQ(header.request_id, 9u);
  ExplainResult back;
  ASSERT_TRUE(DecodeExplainResult(reader, &back));
  EXPECT_EQ(back.ranking.subspaces, result.ranking.subspaces);
  EXPECT_EQ(back.ranking.scores, result.ranking.scores);
}

TEST(ProtocolTest, BusyAndErrorRoundTrip) {
  {
    const std::vector<std::uint8_t> payload = EncodeBusy(5);
    WireReader reader(payload);
    MessageHeader header;
    ASSERT_TRUE(DecodeHeader(reader, &header));
    EXPECT_EQ(header.type, MessageType::kBusy);
    EXPECT_TRUE(reader.AtEnd());
  }
  {
    const std::vector<std::uint8_t> payload = EncodeError(6, "nope");
    WireReader reader(payload);
    MessageHeader header;
    ASSERT_TRUE(DecodeHeader(reader, &header));
    EXPECT_EQ(header.type, MessageType::kError);
    TextResult text;
    ASSERT_TRUE(DecodeTextResult(reader, &text));
    EXPECT_EQ(text.text, "nope");
  }
}

TEST(ProtocolTest, BodyDecodersRejectTrailingBytes) {
  std::vector<std::uint8_t> payload = EncodeStatsRequest(1);
  payload.push_back(0xFF);  // Junk after a well-formed message.
  WireReader reader(payload);
  MessageHeader header;
  ASSERT_TRUE(DecodeHeader(reader, &header));
  TextResult text;
  EXPECT_FALSE(DecodeTextResult(reader, &text));
}

TEST(ProtocolTest, RequestTypePredicate) {
  EXPECT_TRUE(IsRequestType(MessageType::kScore));
  EXPECT_TRUE(IsRequestType(MessageType::kExplain));
  EXPECT_TRUE(IsRequestType(MessageType::kStats));
  EXPECT_TRUE(IsRequestType(MessageType::kTraceDump));
  EXPECT_TRUE(IsRequestType(MessageType::kIngest));
  EXPECT_TRUE(IsRequestType(MessageType::kOnlineScore));
  EXPECT_TRUE(IsRequestType(MessageType::kOnlineExplain));
  EXPECT_FALSE(IsRequestType(MessageType::kScoreResult));
  EXPECT_FALSE(IsRequestType(MessageType::kIngestResult));
  EXPECT_FALSE(IsRequestType(MessageType::kOnlineScoreResult));
  EXPECT_FALSE(IsRequestType(MessageType::kOnlineExplainResult));
  EXPECT_FALSE(IsRequestType(MessageType::kBusy));
  EXPECT_FALSE(IsRequestType(MessageType::kError));
}

TEST(ProtocolTest, IngestRequestRoundTripValidatesRowTiling) {
  IngestRequest request;
  request.dataset = "stream";
  request.num_rows = 2;
  request.values = {1.0, 2.0, 3.0, 4.0, 5.0, 6.0};
  const std::vector<std::uint8_t> payload = EncodeIngestRequest(11, request);

  WireReader reader(payload);
  MessageHeader header;
  ASSERT_TRUE(DecodeHeader(reader, &header));
  EXPECT_EQ(header.type, MessageType::kIngest);
  IngestRequest back;
  ASSERT_TRUE(DecodeIngestRequest(reader, &back));
  EXPECT_EQ(back.dataset, "stream");
  EXPECT_EQ(back.num_rows, 2u);
  EXPECT_EQ(back.values, request.values);

  // 5 values cannot tile into 2 rows: the decoder must reject it.
  request.values.pop_back();
  const std::vector<std::uint8_t> bad = EncodeIngestRequest(12, request);
  WireReader bad_reader(bad);
  ASSERT_TRUE(DecodeHeader(bad_reader, &header));
  EXPECT_FALSE(DecodeIngestRequest(bad_reader, &back));
}

TEST(ProtocolTest, IngestResultRoundTrip) {
  IngestResult result;
  result.accepted = 7;
  result.window_epoch = 41;
  result.window_size = 512;
  result.total_ingested = 99999;
  result.advances = 3;
  const std::vector<std::uint8_t> payload = EncodeIngestResult(13, result);
  WireReader reader(payload);
  MessageHeader header;
  ASSERT_TRUE(DecodeHeader(reader, &header));
  EXPECT_EQ(header.type, MessageType::kIngestResult);
  IngestResult back;
  ASSERT_TRUE(DecodeIngestResult(reader, &back));
  EXPECT_EQ(back.accepted, 7u);
  EXPECT_EQ(back.window_epoch, 41u);
  EXPECT_EQ(back.window_size, 512u);
  EXPECT_EQ(back.total_ingested, 99999u);
  EXPECT_EQ(back.advances, 3u);
}

TEST(ProtocolTest, OnlineScoreRoundTrip) {
  OnlineScoreRequest request;
  request.dataset = "stream";
  request.detector = "LODA";
  request.subspace = Subspace({2, 4});
  const std::vector<std::uint8_t> payload =
      EncodeOnlineScoreRequest(21, request);
  WireReader reader(payload);
  MessageHeader header;
  ASSERT_TRUE(DecodeHeader(reader, &header));
  EXPECT_EQ(header.type, MessageType::kOnlineScore);
  OnlineScoreRequest back;
  ASSERT_TRUE(DecodeOnlineScoreRequest(reader, &back));
  EXPECT_EQ(back.dataset, "stream");
  EXPECT_EQ(back.detector, "LODA");
  EXPECT_EQ(back.subspace, Subspace({2, 4}));

  OnlineScoreResult result;
  result.epoch = 17;
  result.scores = {0.5, -1.25, 3.0};
  const std::vector<std::uint8_t> result_payload =
      EncodeOnlineScoreResult(21, result);
  WireReader result_reader(result_payload);
  ASSERT_TRUE(DecodeHeader(result_reader, &header));
  EXPECT_EQ(header.type, MessageType::kOnlineScoreResult);
  OnlineScoreResult result_back;
  ASSERT_TRUE(DecodeOnlineScoreResult(result_reader, &result_back));
  EXPECT_EQ(result_back.epoch, 17u);
  EXPECT_EQ(result_back.scores, result.scores);
}

TEST(ProtocolTest, OnlineExplainRoundTripCarriesFreshnessEpochs) {
  OnlineExplainRequest request;
  request.dataset = "stream";
  request.detector = "LODA";
  request.explainer = "Beam";
  request.point = 9;
  request.target_dim = 2;
  request.max_results = 5;
  const std::vector<std::uint8_t> payload =
      EncodeOnlineExplainRequest(31, request);
  WireReader reader(payload);
  MessageHeader header;
  ASSERT_TRUE(DecodeHeader(reader, &header));
  EXPECT_EQ(header.type, MessageType::kOnlineExplain);
  OnlineExplainRequest back;
  ASSERT_TRUE(DecodeOnlineExplainRequest(reader, &back));
  EXPECT_EQ(back.dataset, "stream");
  EXPECT_EQ(back.detector, "LODA");
  EXPECT_EQ(back.explainer, "Beam");
  EXPECT_EQ(back.point, 9);
  EXPECT_EQ(back.target_dim, 2);
  EXPECT_EQ(back.max_results, 5u);

  OnlineExplainResult result;
  result.computed_epoch = 40;
  result.current_epoch = 42;  // A stale serve: 2 epochs behind.
  result.ranking.Add(Subspace({0, 3}), 1.5);
  const std::vector<std::uint8_t> result_payload =
      EncodeOnlineExplainResult(31, result);
  WireReader result_reader(result_payload);
  ASSERT_TRUE(DecodeHeader(result_reader, &header));
  EXPECT_EQ(header.type, MessageType::kOnlineExplainResult);
  OnlineExplainResult result_back;
  ASSERT_TRUE(DecodeOnlineExplainResult(result_reader, &result_back));
  EXPECT_EQ(result_back.computed_epoch, 40u);
  EXPECT_EQ(result_back.current_epoch, 42u);
  EXPECT_EQ(result_back.ranking.subspaces, result.ranking.subspaces);
  EXPECT_EQ(result_back.ranking.scores, result.ranking.scores);
}

// The online extension is additive: a pre-extension frame must be encoded
// byte-for-byte as before, so ingest-free clients stay wire-compatible.
TEST(ProtocolTest, PreOnlineScoreFrameIsByteIdenticalGolden) {
  ScoreRequest request;
  request.detector = "LOF";
  request.subspace = Subspace({0, 1});
  const std::vector<std::uint8_t> payload =
      EncodeScoreRequest(0x0102030405060708ull, request);
  const std::vector<std::uint8_t> golden = {
      0x01,                                            // version
      0x01,                                            // kScore, no flag
      0x08, 0x07, 0x06, 0x05, 0x04, 0x03, 0x02, 0x01,  // id (LE)
      0x03, 0x00, 0x00, 0x00, 'L', 'O', 'F',           // detector
      0x02, 0x00,                                      // subspace size
      0x00, 0x00, 0x00, 0x00,                          // feature 0
      0x01, 0x00, 0x00, 0x00,                          // feature 1
  };
  EXPECT_EQ(payload, golden);
}

// --------------------------------------------------------------------------
// Trace-id header extension: untraced frames must be byte-identical to the
// pre-extension format, traced frames must round-trip the id, and corrupt
// trace headers must fail cleanly.

TEST(ProtocolTest, UntracedFramesKeepTheOldFixedHeaderFormat) {
  ScoreRequest request;
  request.detector = "LOF";
  request.subspace = Subspace({0, 1});
  const std::vector<std::uint8_t> payload = EncodeScoreRequest(3, request);
  // Old format: version byte, bare type byte (high bit clear), 8-byte id.
  EXPECT_EQ(payload[0], kProtocolVersion);
  EXPECT_EQ(payload[1], static_cast<std::uint8_t>(MessageType::kScore));
  EXPECT_EQ(payload[1] & kTraceIdFlag, 0);

  WireReader reader(payload);
  MessageHeader header;
  ASSERT_TRUE(DecodeHeader(reader, &header));
  EXPECT_FALSE(header.has_trace_id);
  EXPECT_EQ(header.trace_id, 0u);
  EXPECT_EQ(EncodedHeaderBytes(header), kMessageHeaderBytes);
  ScoreRequest back;
  EXPECT_TRUE(DecodeScoreRequest(reader, &back));
}

TEST(ProtocolTest, TracedRequestRoundTripsTheTraceId) {
  constexpr std::uint64_t kTraceId = 0xfeedfacecafebeefULL;
  ExplainRequest request;
  request.detector = "LOF";
  request.explainer = "Beam";
  const std::vector<std::uint8_t> payload =
      EncodeExplainRequest(11, request, kTraceId);
  EXPECT_EQ(payload[1],
            static_cast<std::uint8_t>(MessageType::kExplain) | kTraceIdFlag);

  WireReader reader(payload);
  MessageHeader header;
  ASSERT_TRUE(DecodeHeader(reader, &header));
  EXPECT_EQ(header.type, MessageType::kExplain);
  EXPECT_TRUE(header.has_trace_id);
  EXPECT_EQ(header.trace_id, kTraceId);
  EXPECT_EQ(EncodedHeaderBytes(header), kMessageHeaderBytes + 8);
  ExplainRequest back;
  ASSERT_TRUE(DecodeExplainRequest(reader, &back));
  EXPECT_EQ(back.detector, "LOF");
}

TEST(ProtocolTest, TraceIdZeroEncodesAsUntraced) {
  // 0 is the "no trace" sentinel: the flag must not be set, so the frame
  // stays byte-identical to one from a pre-extension client.
  const std::vector<std::uint8_t> with = EncodeStatsRequest(9, 0);
  const std::vector<std::uint8_t> without = EncodeStatsRequest(9);
  EXPECT_EQ(with, without);
  EXPECT_EQ(with[1] & kTraceIdFlag, 0);
}

TEST(ProtocolTest, TruncatedTraceHeaderTripsTheReaderError) {
  ScoreRequest request;
  request.detector = "LOF";
  request.subspace = Subspace({0});
  std::vector<std::uint8_t> payload = EncodeScoreRequest(1, request, 77);
  // Flagged header but the frame ends inside the trace id bytes.
  payload.resize(kMessageHeaderBytes + 4);
  WireReader reader(payload);
  MessageHeader header;
  EXPECT_FALSE(DecodeHeader(reader, &header));
  EXPECT_FALSE(reader.ok());
}

TEST(ProtocolTest, FlagOnlyHeaderWithNoBodyFailsCleanly) {
  // A malicious 10-byte frame with the trace flag set but nothing after
  // the fixed header: decoding must fail, not read out of bounds.
  WireWriter writer;
  writer.PutU8(kProtocolVersion);
  writer.PutU8(static_cast<std::uint8_t>(MessageType::kScore) | kTraceIdFlag);
  writer.PutU64(123);
  WireReader reader(writer.bytes());
  MessageHeader header;
  EXPECT_FALSE(DecodeHeader(reader, &header));
}

TEST(ProtocolTest, TraceDumpRequestRoundTrip) {
  TraceDumpRequest request;
  request.clear = true;
  const std::vector<std::uint8_t> payload = EncodeTraceDumpRequest(4, request);
  WireReader reader(payload);
  MessageHeader header;
  ASSERT_TRUE(DecodeHeader(reader, &header));
  EXPECT_EQ(header.type, MessageType::kTraceDump);
  TraceDumpRequest back;
  ASSERT_TRUE(DecodeTraceDumpRequest(reader, &back));
  EXPECT_TRUE(back.clear);

  const std::vector<std::uint8_t> result =
      EncodeTraceDumpResult(4, TextResult{"{\"traceEvents\":[]}"});
  WireReader result_reader(result);
  ASSERT_TRUE(DecodeHeader(result_reader, &header));
  EXPECT_EQ(header.type, MessageType::kTraceDumpResult);
  TextResult text;
  ASSERT_TRUE(DecodeTextResult(result_reader, &text));
  EXPECT_EQ(text.text, "{\"traceEvents\":[]}");
}

TEST(ProtocolTest, ProfDumpRequestRoundTripAllActions) {
  for (const ProfAction action :
       {ProfAction::kDump, ProfAction::kStart, ProfAction::kStop}) {
    ProfDumpRequest request;
    request.action = action;
    request.sample_hz = 997;
    request.clear = action == ProfAction::kDump;
    const std::vector<std::uint8_t> payload =
        EncodeProfDumpRequest(11, request);
    WireReader reader(payload);
    MessageHeader header;
    ASSERT_TRUE(DecodeHeader(reader, &header));
    EXPECT_EQ(header.type, MessageType::kProfDump);
    EXPECT_EQ(header.request_id, 11u);
    ProfDumpRequest back;
    ASSERT_TRUE(DecodeProfDumpRequest(reader, &back));
    EXPECT_EQ(back.action, action);
    EXPECT_EQ(back.sample_hz, 997u);
    EXPECT_EQ(back.clear, request.clear);
  }
  EXPECT_TRUE(IsRequestType(MessageType::kProfDump));
  EXPECT_FALSE(IsRequestType(MessageType::kProfDumpResult));
}

TEST(ProtocolTest, ProfDumpRequestGoldenBytes) {
  // Frozen frame layout: version, type, request id (u64 LE), action (u8),
  // sample_hz (u32 LE), clear (u8). A change here is a wire break — bump
  // kProtocolVersion instead of editing the expectation.
  ProfDumpRequest request;
  request.action = ProfAction::kStart;
  request.sample_hz = 0x12345678;
  request.clear = true;
  const std::vector<std::uint8_t> payload = EncodeProfDumpRequest(5, request);
  const std::vector<std::uint8_t> expected = {
      kProtocolVersion,
      static_cast<std::uint8_t>(MessageType::kProfDump),  // 8
      5, 0, 0, 0, 0, 0, 0, 0,                             // request id
      1,                                                  // kStart
      0x78, 0x56, 0x34, 0x12,                             // sample_hz
      1,                                                  // clear
  };
  EXPECT_EQ(payload, expected);
}

TEST(ProtocolTest, ProfDumpRequestRejectsUnknownActionAndTrailingBytes) {
  ProfDumpRequest request;
  std::vector<std::uint8_t> payload = EncodeProfDumpRequest(5, request);
  // Action byte sits right after the 10-byte header.
  payload[10] = 9;
  {
    WireReader reader(payload);
    MessageHeader header;
    ASSERT_TRUE(DecodeHeader(reader, &header));
    ProfDumpRequest back;
    EXPECT_FALSE(DecodeProfDumpRequest(reader, &back));
  }
  payload[10] = 0;
  payload.push_back(0xFF);  // Trailing garbage must be rejected.
  {
    WireReader reader(payload);
    MessageHeader header;
    ASSERT_TRUE(DecodeHeader(reader, &header));
    ProfDumpRequest back;
    EXPECT_FALSE(DecodeProfDumpRequest(reader, &back));
  }
}

// --------------------------------------------------------------------------
// Deadline header extension: deadline-less frames must stay byte-identical
// to the old format (the flag lives on the version byte — the type byte's
// high bit already belongs to the trace extension), stamped frames carry a
// trailing u32, and the two optional fields compose.

TEST(ProtocolTest, DeadlineStampedRequestGoldenBytes) {
  ScoreRequest request;
  request.detector = "LOF";
  request.subspace = Subspace({0, 1});
  const std::vector<std::uint8_t> payload = EncodeScoreRequest(
      0x0102030405060708ull, request, /*trace_id=*/0, /*deadline_ms=*/0x1234);
  const std::vector<std::uint8_t> golden = {
      0x81,                                            // version | deadline
      0x01,                                            // kScore, no trace
      0x08, 0x07, 0x06, 0x05, 0x04, 0x03, 0x02, 0x01,  // id (LE)
      0x34, 0x12, 0x00, 0x00,                          // deadline_ms (LE)
      0x03, 0x00, 0x00, 0x00, 'L', 'O', 'F',           // detector
      0x02, 0x00,                                      // subspace size
      0x00, 0x00, 0x00, 0x00,                          // feature 0
      0x01, 0x00, 0x00, 0x00,                          // feature 1
  };
  EXPECT_EQ(payload, golden);

  WireReader reader(payload);
  MessageHeader header;
  ASSERT_TRUE(DecodeHeader(reader, &header));
  EXPECT_EQ(header.version, kProtocolVersion);  // Flag stripped on decode.
  EXPECT_TRUE(header.has_deadline);
  EXPECT_EQ(header.deadline_ms, 0x1234u);
  EXPECT_FALSE(header.has_trace_id);
  EXPECT_EQ(EncodedHeaderBytes(header), kMessageHeaderBytes + 4);
  ScoreRequest back;
  ASSERT_TRUE(DecodeScoreRequest(reader, &back));
  EXPECT_EQ(back.detector, "LOF");
}

TEST(ProtocolTest, DeadlineZeroKeepsTheFrameByteIdenticalToOldClients) {
  ScoreRequest request;
  request.detector = "LOF";
  request.subspace = Subspace({0, 1});
  const std::vector<std::uint8_t> with =
      EncodeScoreRequest(3, request, 0, /*deadline_ms=*/0);
  const std::vector<std::uint8_t> without = EncodeScoreRequest(3, request);
  EXPECT_EQ(with, without);
  EXPECT_EQ(with[0], kProtocolVersion);
  EXPECT_EQ(with[0] & kDeadlineFlag, 0);
}

TEST(ProtocolTest, TraceIdAndDeadlineComposeInOrder) {
  constexpr std::uint64_t kTraceId = 0xfeedfacecafebeefULL;
  const std::vector<std::uint8_t> payload =
      EncodeStatsRequest(9, kTraceId, /*deadline_ms=*/250);
  EXPECT_EQ(payload[0], kProtocolVersion | kDeadlineFlag);
  EXPECT_EQ(payload[1],
            static_cast<std::uint8_t>(MessageType::kStats) | kTraceIdFlag);

  WireReader reader(payload);
  MessageHeader header;
  ASSERT_TRUE(DecodeHeader(reader, &header));
  EXPECT_TRUE(header.has_trace_id);
  EXPECT_EQ(header.trace_id, kTraceId);
  EXPECT_TRUE(header.has_deadline);
  EXPECT_EQ(header.deadline_ms, 250u);
  EXPECT_EQ(EncodedHeaderBytes(header), kMessageHeaderBytes + 8 + 4);
  EXPECT_TRUE(reader.AtEnd());  // Stats has an empty body.
}

TEST(ProtocolTest, TruncatedDeadlineHeaderFailsCleanly) {
  std::vector<std::uint8_t> payload =
      EncodeStatsRequest(9, /*trace_id=*/0, /*deadline_ms=*/250);
  payload.resize(kMessageHeaderBytes + 2);  // Ends inside the deadline u32.
  WireReader reader(payload);
  MessageHeader header;
  EXPECT_FALSE(DecodeHeader(reader, &header));
  EXPECT_FALSE(reader.ok());
}

TEST(ProtocolTest, DeadlineExceededResponseGoldenBytes) {
  const std::vector<std::uint8_t> payload = EncodeDeadlineExceeded(7);
  const std::vector<std::uint8_t> golden = {
      kProtocolVersion,
      static_cast<std::uint8_t>(MessageType::kDeadlineExceeded),  // 102
      7, 0, 0, 0, 0, 0, 0, 0,                                     // id
  };
  EXPECT_EQ(payload, golden);  // Empty body, like kBusy.

  WireReader reader(payload);
  MessageHeader header;
  ASSERT_TRUE(DecodeHeader(reader, &header));
  EXPECT_EQ(header.type, MessageType::kDeadlineExceeded);
  EXPECT_EQ(header.request_id, 7u);
  EXPECT_TRUE(reader.AtEnd());
}

TEST(ProtocolTest, ProfDumpResultRoundTrip) {
  const std::vector<std::uint8_t> payload =
      EncodeProfDumpResult(7, ProfDumpResult{"main;Lof::Score 42\n"});
  WireReader reader(payload);
  MessageHeader header;
  ASSERT_TRUE(DecodeHeader(reader, &header));
  EXPECT_EQ(header.type, MessageType::kProfDumpResult);
  EXPECT_EQ(header.request_id, 7u);
  ProfDumpResult back;
  ASSERT_TRUE(DecodeProfDumpResult(reader, &back));
  EXPECT_EQ(back.text, "main;Lof::Score 42\n");
}

}  // namespace
}  // namespace subex
