#include <gtest/gtest.h>

#include <string>

#include "obs/build_info.h"
#include "obs/prometheus.h"
#include "obs/registry.h"

#include "common/json.h"

namespace subex {
namespace {

// The renderer emits real samples only for instruments that recorded,
// which requires instrumentation; under SUBEX_OBS_DISABLED the mutators are
// no-ops, so only the shape-of-empty and build-info checks apply.

TEST(PrometheusTest, EmptyRegistryRendersEmptyBody) {
  MetricsRegistry registry;
  EXPECT_EQ(RenderPrometheusText(registry), "");
}

TEST(BuildInfoTest, BuildInfoIsValidJson) {
  const std::string json = BuildInfoJson();
  EXPECT_TRUE(IsValidJson(json)) << json;
  EXPECT_NE(json.find("\"obs_enabled\""), std::string::npos);
  EXPECT_NE(json.find("\"compiler\""), std::string::npos);
}

#ifndef SUBEX_OBS_DISABLED

TEST(PrometheusTest, CountersGetTotalSuffixAndTypeLine) {
  MetricsRegistry registry;
  registry.GetCounter("net.bytes_sent").Increment(123);
  const std::string text = RenderPrometheusText(registry);
  EXPECT_NE(text.find("# TYPE subex_net_bytes_sent_total counter\n"),
            std::string::npos);
  EXPECT_NE(text.find("\nsubex_net_bytes_sent_total 123\n"),
            std::string::npos);
}

TEST(PrometheusTest, GaugesKeepSignedValues) {
  MetricsRegistry registry;
  registry.GetGauge("queue.depth").Set(-7);
  const std::string text = RenderPrometheusText(registry);
  EXPECT_NE(text.find("# TYPE subex_queue_depth gauge\n"), std::string::npos);
  EXPECT_NE(text.find("subex_queue_depth -7\n"), std::string::npos);
}

TEST(PrometheusTest, HistogramsBecomeSecondsSummaries) {
  MetricsRegistry registry;
  // 1 ms recorded in nanoseconds must surface as 0.001-ish seconds.
  registry.GetHistogram("serve.request").Record(1000000);
  const std::string text = RenderPrometheusText(registry);
  EXPECT_NE(text.find("# TYPE subex_serve_request_seconds summary\n"),
            std::string::npos);
  for (const char* q : {"0.5", "0.9", "0.99", "0.999"}) {
    EXPECT_NE(text.find("subex_serve_request_seconds{quantile=\"" +
                        std::string(q) + "\"} "),
              std::string::npos)
        << q;
  }
  EXPECT_NE(text.find("subex_serve_request_seconds_sum 0.001\n"),
            std::string::npos);
  EXPECT_NE(text.find("subex_serve_request_seconds_count 1\n"),
            std::string::npos);
}

TEST(PrometheusTest, MetricNamesAreSanitized) {
  MetricsRegistry registry;
  registry.GetCounter("detect.score.kNN-5").Increment();
  const std::string text = RenderPrometheusText(registry);
  EXPECT_NE(text.find("subex_detect_score_kNN_5_total 1\n"),
            std::string::npos);
}

TEST(PrometheusTest, SnapshotOverloadMatchesRegistryOverload) {
  MetricsRegistry registry;
  registry.GetCounter("a").Increment(5);
  registry.GetGauge("b").Set(2);
  registry.GetHistogram("c").Record(10);
  EXPECT_EQ(RenderPrometheusText(registry),
            RenderPrometheusText(registry.Snapshot()));
}

#endif  // SUBEX_OBS_DISABLED

}  // namespace
}  // namespace subex
