#include <gtest/gtest.h>

#include <algorithm>

#include "detect/lof.h"
#include "explain/lookout.h"
#include "stream/drifting_stream.h"
#include "stream/sliding_window.h"
#include "stream/streaming_pipeline.h"

namespace subex {
namespace {

TEST(SlidingWindowTest, FillsThenEvictsOldest) {
  SlidingWindow window(3, 2);
  const std::vector<double> rows[] = {
      {1.0, 1.0}, {2.0, 2.0}, {3.0, 3.0}, {4.0, 4.0}};
  for (int i = 0; i < 3; ++i) EXPECT_EQ(window.Push(rows[i]), i);
  EXPECT_EQ(window.size(), 3u);
  EXPECT_FALSE(window.saturated());
  EXPECT_EQ(window.Push(rows[3]), 3);
  EXPECT_EQ(window.size(), 3u);
  EXPECT_TRUE(window.saturated());
  // Oldest retained is now stream id 1.
  EXPECT_EQ(window.StreamId(0), 1);
  EXPECT_EQ(window.StreamId(2), 3);
}

TEST(SlidingWindowTest, WindowIndexMapsStreamIds) {
  SlidingWindow window(2, 1);
  const std::vector<double> row = {1.0};
  window.Push(row);
  window.Push(row);
  window.Push(row);  // Evicts id 0.
  EXPECT_EQ(window.WindowIndex(0), -1);
  EXPECT_EQ(window.WindowIndex(1), 0);
  EXPECT_EQ(window.WindowIndex(2), 1);
  EXPECT_EQ(window.WindowIndex(99), -1);
}

TEST(SlidingWindowTest, SnapshotPreservesOrderAndValues) {
  SlidingWindow window(3, 2);
  const std::vector<double> a = {1.0, 10.0};
  const std::vector<double> b = {2.0, 20.0};
  window.Push(a);
  window.Push(b);
  const Dataset snapshot = window.Snapshot();
  EXPECT_EQ(snapshot.num_points(), 2u);
  EXPECT_EQ(snapshot.Value(0, 1), 10.0);
  EXPECT_EQ(snapshot.Value(1, 0), 2.0);
}

TEST(SlidingWindowTest, EmptyWindowQueries) {
  SlidingWindow window(4, 2);
  EXPECT_EQ(window.size(), 0u);
  EXPECT_FALSE(window.saturated());
  EXPECT_EQ(window.WindowIndex(0), -1);
  EXPECT_EQ(window.WindowIndex(-1), -1);
  EXPECT_EQ(window.capacity(), 4u);
  EXPECT_EQ(window.num_features(), 2u);
}

TEST(SlidingWindowTest, AdvanceFarBeyondCapacityKeepsNewestRows) {
  SlidingWindow window(2, 1);
  for (int i = 0; i < 5; ++i) {
    const std::vector<double> row = {static_cast<double>(i)};
    EXPECT_EQ(window.Push(row), i);
  }
  EXPECT_EQ(window.size(), 2u);
  EXPECT_TRUE(window.saturated());
  EXPECT_EQ(window.StreamId(0), 3);
  EXPECT_EQ(window.StreamId(1), 4);
  EXPECT_EQ(window.WindowIndex(2), -1);  // Evicted by the overshoot.
  const Dataset snapshot = window.Snapshot();
  EXPECT_EQ(snapshot.Value(0, 0), 3.0);
  EXPECT_EQ(snapshot.Value(1, 0), 4.0);
}

TEST(SlidingWindowTest, MinimumCapacityStillSlides) {
  SlidingWindow window(2, 1);  // The enforced capacity floor.
  for (int i = 0; i < 4; ++i) {
    const std::vector<double> row = {static_cast<double>(10 + i)};
    window.Push(row);
    EXPECT_EQ(window.size(), std::min<std::size_t>(2, i + 1));
    const Dataset snapshot = window.Snapshot();
    EXPECT_EQ(snapshot.Value(snapshot.num_points() - 1, 0), 10.0 + i);
  }
}

DriftingStreamConfig SmallStream() {
  DriftingStreamConfig config;
  config.chunk_size = 120;
  config.outliers_per_chunk = 4;
  config.drift_every_chunks = 3;
  config.subspace_dims = {2, 3};
  config.seed = 11;
  return config;
}

TEST(DriftingStreamTest, ChunkShapes) {
  DriftingStreamGenerator stream(SmallStream());
  EXPECT_EQ(stream.num_features(), 5);
  const StreamChunk chunk = stream.Next();
  EXPECT_EQ(chunk.points.rows(), 120u);
  EXPECT_EQ(chunk.points.cols(), 5u);
  EXPECT_EQ(chunk.start_id, 0);
  EXPECT_EQ(chunk.concept_epoch, 0);
}

TEST(DriftingStreamTest, StartIdsAdvance) {
  DriftingStreamGenerator stream(SmallStream());
  EXPECT_EQ(stream.Next().start_id, 0);
  EXPECT_EQ(stream.Next().start_id, 120);
  EXPECT_EQ(stream.Next().start_id, 240);
}

TEST(DriftingStreamTest, EpochAdvancesAtDrift) {
  DriftingStreamGenerator stream(SmallStream());
  std::vector<int> epochs;
  for (int i = 0; i < 7; ++i) epochs.push_back(stream.Next().concept_epoch);
  EXPECT_EQ(epochs, (std::vector<int>{0, 0, 0, 1, 1, 1, 2}));
}

TEST(DriftingStreamTest, ConceptStableWithinEpochChangesAcross) {
  DriftingStreamGenerator stream(SmallStream());
  (void)stream.Next();
  const std::vector<Subspace> epoch0 = stream.current_relevant_subspaces();
  (void)stream.Next();
  EXPECT_EQ(stream.current_relevant_subspaces(), epoch0);
  (void)stream.Next();
  (void)stream.Next();  // First chunk of epoch 1.
  EXPECT_NE(stream.current_relevant_subspaces(), epoch0);
}

TEST(DriftingStreamTest, GroundTruthIndicesLocalAndLabelled) {
  DriftingStreamGenerator stream(SmallStream());
  for (int i = 0; i < 4; ++i) {
    const StreamChunk chunk = stream.Next();
    for (int p : chunk.ground_truth.ExplainedPoints()) {
      EXPECT_GE(p, 0);
      EXPECT_LT(p, static_cast<int>(chunk.points.rows()));
      EXPECT_TRUE(std::binary_search(chunk.outlier_indices.begin(),
                                     chunk.outlier_indices.end(), p));
    }
  }
}

TEST(DriftingStreamTest, Deterministic) {
  DriftingStreamGenerator a(SmallStream());
  DriftingStreamGenerator b(SmallStream());
  for (int i = 0; i < 4; ++i) {
    const StreamChunk ca = a.Next();
    const StreamChunk cb = b.Next();
    EXPECT_TRUE(ca.points == cb.points);
    EXPECT_EQ(ca.outlier_indices, cb.outlier_indices);
  }
}

TEST(StreamingPipelineTest, FreshSummariesTrackDriftStaleOnesDecay) {
  DriftingStreamConfig config;
  config.chunk_size = 200;
  config.outliers_per_chunk = 6;
  config.drift_every_chunks = 2;
  config.subspace_dims = {2, 2};
  config.seed = 23;
  DriftingStreamGenerator stream(config);
  const Lof lof(15);
  LookOut::Options options;
  options.budget = 4;
  const LookOut lookout(options);

  const std::vector<StreamingChunkResult> results =
      RunStreamingSummarization(stream, lof, lookout, 6, 2);
  ASSERT_EQ(results.size(), 6u);

  double fresh_after_drift = 0.0;
  double stale_after_drift = 0.0;
  int counted = 0;
  for (const StreamingChunkResult& r : results) {
    if (r.concept_epoch == 0 || r.num_points == 0) continue;
    fresh_after_drift += r.map_recomputed;
    stale_after_drift += r.map_stale;
    ++counted;
  }
  ASSERT_GT(counted, 0);
  // Recomputed summaries keep explaining post-drift chunks well; the
  // frozen epoch-0 summary decays (its subspaces describe dead structure).
  EXPECT_GT(fresh_after_drift / counted, stale_after_drift / counted + 0.2);
  EXPECT_GT(fresh_after_drift / counted, 0.5);
}

TEST(StreamingPipelineTest, FirstChunkFreshEqualsStale) {
  DriftingStreamGenerator stream(SmallStream());
  const Lof lof(15);
  const LookOut lookout;
  const std::vector<StreamingChunkResult> results =
      RunStreamingSummarization(stream, lof, lookout, 1, 2);
  ASSERT_EQ(results.size(), 1u);
  EXPECT_DOUBLE_EQ(results[0].map_recomputed, results[0].map_stale);
}

}  // namespace
}  // namespace subex
