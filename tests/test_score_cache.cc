#include "serve/score_cache.h"

#include <gtest/gtest.h>

#include <memory>
#include <thread>
#include <vector>

namespace subex {
namespace {

ScoreVectorPtr MakeValue(std::initializer_list<double> values) {
  return std::make_shared<const std::vector<double>>(values);
}

ScoreKey Key(std::initializer_list<FeatureId> features,
             const char* detector = "LOF") {
  return ScoreKey{detector, Subspace(features)};
}

TEST(ScoreCacheTest, PutGetRoundTrip) {
  ScoreCache cache;
  const ScoreKey key = Key({0, 2});
  EXPECT_EQ(cache.Get(key), nullptr);
  cache.Put(key, MakeValue({1.0, 2.0, 3.0}));
  const ScoreVectorPtr got = cache.Get(key);
  ASSERT_NE(got, nullptr);
  EXPECT_EQ(*got, (std::vector<double>{1.0, 2.0, 3.0}));
  EXPECT_EQ(cache.size(), 1u);
}

TEST(ScoreCacheTest, DetectorNameIsPartOfTheKey) {
  ScoreCache cache;
  cache.Put(Key({0, 1}, "LOF"), MakeValue({1.0}));
  cache.Put(Key({0, 1}, "iForest"), MakeValue({2.0}));
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.Get(Key({0, 1}, "LOF"))->front(), 1.0);
  EXPECT_EQ(cache.Get(Key({0, 1}, "iForest"))->front(), 2.0);
}

TEST(ScoreCacheTest, OverwriteReplacesValue) {
  ScoreCache cache;
  const ScoreKey key = Key({3});
  cache.Put(key, MakeValue({1.0}));
  cache.Put(key, MakeValue({9.0}));
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.Get(key)->front(), 9.0);
}

TEST(ScoreCacheTest, EntryBudgetEvictsLeastRecentlyUsed) {
  ScoreCacheOptions options;
  options.num_shards = 1;  // Single shard so the LRU order is global.
  options.max_entries = 2;
  ServiceStats stats;
  ScoreCache cache(options, &stats);
  cache.Put(Key({0}), MakeValue({0.0}));
  cache.Put(Key({1}), MakeValue({1.0}));
  // Touch {0} so {1} becomes the LRU victim.
  EXPECT_NE(cache.Get(Key({0})), nullptr);
  cache.Put(Key({2}), MakeValue({2.0}));
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_NE(cache.Get(Key({0})), nullptr);
  EXPECT_EQ(cache.Get(Key({1})), nullptr);
  EXPECT_NE(cache.Get(Key({2})), nullptr);
  EXPECT_EQ(stats.snapshot().evictions, 1u);
}

TEST(ScoreCacheTest, ByteBudgetEvicts) {
  ScoreCacheOptions options;
  options.num_shards = 1;
  options.max_entries = 1000;
  // Room for roughly two entries of 10 doubles (96 bytes flat overhead +
  // payload each).
  options.max_bytes = 420;
  ServiceStats stats;
  ScoreCache cache(options, &stats);
  auto big = [] {
    return std::make_shared<const std::vector<double>>(10, 1.0);
  };
  cache.Put(Key({0}), big());
  cache.Put(Key({1}), big());
  cache.Put(Key({2}), big());
  EXPECT_LT(cache.size(), 3u);
  EXPECT_GT(stats.snapshot().evictions, 0u);
  EXPECT_LE(cache.bytes(), 420u);
}

TEST(ScoreCacheTest, OversizedValueIsNotRetained) {
  ScoreCacheOptions options;
  options.num_shards = 1;
  options.max_bytes = 64;  // Smaller than any entry's flat overhead.
  ScoreCache cache(options);
  cache.Put(Key({0}), MakeValue({1.0}));
  EXPECT_EQ(cache.size(), 0u);
}

TEST(ScoreCacheTest, ZeroEntryBudgetDisablesRetention) {
  ScoreCacheOptions options;
  options.max_entries = 0;
  ScoreCache cache(options);
  cache.Put(Key({0}), MakeValue({1.0}));
  EXPECT_EQ(cache.Get(Key({0})), nullptr);
}

TEST(ScoreCacheTest, ClearDropsEverything) {
  ScoreCache cache;
  cache.Put(Key({0}), MakeValue({1.0}));
  cache.Put(Key({1}), MakeValue({2.0}));
  cache.Clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.bytes(), 0u);
  EXPECT_EQ(cache.Get(Key({0})), nullptr);
}

TEST(ScoreCacheTest, EvictedValueStaysAliveForHolders) {
  ScoreCacheOptions options;
  options.num_shards = 1;
  options.max_entries = 1;
  ScoreCache cache(options);
  cache.Put(Key({0}), MakeValue({7.0}));
  const ScoreVectorPtr held = cache.Get(Key({0}));
  cache.Put(Key({1}), MakeValue({8.0}));  // Evicts {0}.
  EXPECT_EQ(cache.Get(Key({0})), nullptr);
  ASSERT_NE(held, nullptr);
  EXPECT_EQ(held->front(), 7.0);
}

TEST(ScoreCacheTest, ManyKeysAcrossShardsAllRetrievable) {
  ScoreCacheOptions options;
  options.num_shards = 8;
  options.max_entries = 4096;
  ScoreCache cache(options);
  for (FeatureId f = 0; f < 200; ++f) {
    cache.Put(Key({f, f + 1}), MakeValue({static_cast<double>(f)}));
  }
  EXPECT_EQ(cache.size(), 200u);
  for (FeatureId f = 0; f < 200; ++f) {
    const ScoreVectorPtr got = cache.Get(Key({f, f + 1}));
    ASSERT_NE(got, nullptr);
    EXPECT_EQ(got->front(), static_cast<double>(f));
  }
}

TEST(ScoreCacheTest, ShardSplitNeverExceedsEntryBudget) {
  // Regression: per-shard budgets used to round up to one entry per shard,
  // so max_entries=4 with 8 shards could retain up to 8 entries. The split
  // must be exact — totals are a hard ceiling.
  ScoreCacheOptions options;
  options.num_shards = 8;
  options.max_entries = 4;
  options.max_bytes = 0;  // Unbounded bytes; entries are the constraint.
  ScoreCache cache(options);
  for (FeatureId f = 0; f < 64; ++f) {
    cache.Put(Key({f}), MakeValue({static_cast<double>(f)}));
  }
  EXPECT_LE(cache.size(), 4u);
}

TEST(ScoreCacheTest, ShardSplitNeverExceedsByteBudget) {
  // Same regression for bytes: max_bytes smaller than num_shards used to
  // leave every shard unbounded (budget/num_shards == 0 meant "no limit").
  ScoreCacheOptions options;
  options.num_shards = 8;
  options.max_entries = 1 << 16;
  options.max_bytes = 500;  // Roughly two entries across the whole cache.
  ScoreCache cache(options);
  for (FeatureId f = 0; f < 64; ++f) {
    cache.Put(Key({f}), MakeValue({static_cast<double>(f)}));
  }
  EXPECT_LE(cache.bytes(), 500u);
}

TEST(ScoreCacheTest, ConcurrentPutGetIsConsistent) {
  ScoreCacheOptions options;
  options.num_shards = 4;
  options.max_entries = 64;  // Small enough to force concurrent eviction.
  ScoreCache cache(options);
  constexpr int kThreads = 4;
  constexpr int kKeys = 40;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&cache, t] {
      for (int round = 0; round < 50; ++round) {
        for (FeatureId f = 0; f < kKeys; ++f) {
          const ScoreKey key = Key({f, f + t % 2});
          const ScoreVectorPtr got = cache.Get(key);
          if (got != nullptr) {
            // A cached value must always be the one put for this key.
            EXPECT_EQ(got->front(), static_cast<double>(f));
          } else {
            cache.Put(key, MakeValue({static_cast<double>(f)}));
          }
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
}

TEST(ScoreCacheTest, EvictIfDropsOnlyMatchingKeys) {
  ScoreCache cache;
  cache.Put(Key({0, 1}, "LODA@1"), MakeValue({1.0}));
  cache.Put(Key({2, 3}, "LODA@1"), MakeValue({2.0}));
  cache.Put(Key({0, 1}, "LODA@2"), MakeValue({3.0}));
  ASSERT_EQ(cache.size(), 3u);
  const std::size_t bytes_before = cache.bytes();

  // The online subsystem's targeted invalidation: drop one epoch's entries,
  // keep the rest.
  const std::size_t evicted = cache.EvictIf([](const ScoreKey& key) {
    return key.detector.ends_with("@1");
  });
  EXPECT_EQ(evicted, 2u);
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_LT(cache.bytes(), bytes_before);
  EXPECT_EQ(cache.Get(Key({0, 1}, "LODA@1")), nullptr);
  EXPECT_EQ(cache.Get(Key({2, 3}, "LODA@1")), nullptr);
  ASSERT_NE(cache.Get(Key({0, 1}, "LODA@2")), nullptr);
  EXPECT_EQ(cache.Get(Key({0, 1}, "LODA@2"))->front(), 3.0);
}

TEST(ScoreCacheTest, EvictIfNoMatchIsANoOp) {
  ScoreCache cache;
  cache.Put(Key({0}), MakeValue({1.0}));
  EXPECT_EQ(cache.EvictIf([](const ScoreKey&) { return false; }), 0u);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(ScoreCacheTest, EvictIfReleasesManagerBudget) {
  EvictionManager::Options manager_options;
  manager_options.budget_bytes = 1 << 20;
  EvictionManager manager(manager_options);
  ScoreCacheOptions options;
  options.manager = &manager;
  options.name = "evictif";
  ScoreCache cache(options);
  cache.Put(Key({0, 1}, "d@1"), MakeValue({1.0, 2.0, 3.0}));
  cache.Put(Key({0, 1}, "d@2"), MakeValue({4.0, 5.0, 6.0}));
  const std::size_t used_before = manager.used_bytes();
  ASSERT_GT(used_before, 0u);

  cache.EvictIf(
      [](const ScoreKey& key) { return key.detector.ends_with("@1"); });
  // The freed bytes were returned to the manager, not leaked as reserved.
  EXPECT_LT(manager.used_bytes(), used_before);
  EXPECT_EQ(manager.used_bytes(), cache.bytes());
}

TEST(ScoreCacheTest, EvictIfOnEmptyCacheIsExactlyZero) {
  EvictionManager::Options manager_options;
  manager_options.budget_bytes = 1 << 20;
  EvictionManager manager(manager_options);
  ScoreCacheOptions options;
  options.manager = &manager;
  options.name = "evictif-empty";
  ScoreCache cache(options);
  // Nothing cached: the sweep must report zero entries and must not call
  // into the manager with a zero-byte release (freed == 0 short-circuits).
  EXPECT_EQ(cache.EvictIf([](const ScoreKey&) { return true; }), 0u);
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.bytes(), 0u);
  EXPECT_EQ(manager.used_bytes(), 0u);
}

TEST(ScoreCacheTest, EvictIfNoMatchKeepsManagerAccountingExact) {
  EvictionManager::Options manager_options;
  manager_options.budget_bytes = 1 << 20;
  EvictionManager manager(manager_options);
  ScoreCacheOptions options;
  options.manager = &manager;
  options.name = "evictif-nomatch";
  ScoreCache cache(options);
  cache.Put(Key({0, 1}), MakeValue({1.0, 2.0}));
  cache.Put(Key({2, 3}), MakeValue({3.0, 4.0}));
  const std::size_t used_before = manager.used_bytes();
  ASSERT_GT(used_before, 0u);

  EXPECT_EQ(cache.EvictIf([](const ScoreKey&) { return false; }), 0u);
  // No entry matched: reservations are byte-for-byte untouched and the
  // entries stay retrievable.
  EXPECT_EQ(manager.used_bytes(), used_before);
  EXPECT_EQ(manager.used_bytes(), cache.bytes());
  EXPECT_EQ(cache.size(), 2u);
  ASSERT_NE(cache.Get(Key({0, 1})), nullptr);
  ASSERT_NE(cache.Get(Key({2, 3})), nullptr);
}

TEST(ScoreCacheTest, EvictIfEverythingReturnsAllBytesToManager) {
  EvictionManager::Options manager_options;
  manager_options.budget_bytes = 1 << 20;
  EvictionManager manager(manager_options);
  ScoreCacheOptions options;
  options.manager = &manager;
  options.name = "evictif-all";
  ScoreCache cache(options);
  cache.Put(Key({0, 1}), MakeValue({1.0, 2.0, 3.0}));
  cache.Put(Key({2, 3}), MakeValue({4.0}));
  ASSERT_GT(manager.used_bytes(), 0u);

  EXPECT_EQ(cache.EvictIf([](const ScoreKey&) { return true; }), 2u);
  // A full sweep returns every reserved byte — used must land on exactly
  // zero, not drift by per-entry overhead.
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.bytes(), 0u);
  EXPECT_EQ(manager.used_bytes(), 0u);

  // And the accounting still works for entries added after the sweep.
  cache.Put(Key({4, 5}), MakeValue({5.0}));
  EXPECT_GT(manager.used_bytes(), 0u);
  EXPECT_EQ(manager.used_bytes(), cache.bytes());
}

}  // namespace
}  // namespace subex
