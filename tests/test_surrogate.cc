#include "explain/surrogate.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "data/generators.h"
#include "detect/lof.h"

namespace subex {
namespace {

TEST(SurrogateTest, RecoversFigure1Subspace) {
  const SyntheticDataset d = GenerateFigure1Dataset(1, 300);
  const Lof lof(15);
  const SurrogateExplainer surrogate;
  // The surrogate explains via full-space score structure; in the 3d toy
  // dataset the relevant features must land in the top-ranked subspaces.
  const RankedSubspaces result = surrogate.Explain(d.dataset, lof, 0, 2);
  ASSERT_FALSE(result.empty());
  // All 2d subsets of 3 features = 3 candidates; the planted {0,1} must be
  // among them and the ranking must not crash.
  EXPECT_NE(std::find(result.subspaces.begin(), result.subspaces.end(),
                      Subspace({0, 1})),
            result.subspaces.end());
}

TEST(SurrogateTest, SignatureConcentratesOnRelevantFeatures) {
  // One relevant 2d subspace in a 10-feature dataset with 8 noise features:
  // the surrogate's candidate pool must be dominated by relevant features.
  HicsGeneratorConfig config;
  config.num_points = 400;
  config.subspace_dims = {2, 2, 3, 3};
  config.seed = 31;
  const SyntheticDataset d = GenerateHicsDataset(config);
  const Lof lof(15);
  const SurrogateExplainer surrogate;
  const int point = d.dataset.outlier_indices().front();
  const RankedSubspaces result = surrogate.Explain(d.dataset, lof, point, 2);
  EXPECT_FALSE(result.empty());
  for (const Subspace& s : result.subspaces) EXPECT_EQ(s.size(), 2u);
}

TEST(SurrogateTest, ReturnsRequestedDimensionality) {
  const SyntheticDataset d = GenerateFigure1Dataset(2, 200);
  const Lof lof(15);
  const SurrogateExplainer surrogate;
  for (int dim : {1, 2, 3}) {
    const RankedSubspaces result =
        surrogate.Explain(d.dataset, lof, 0, dim);
    for (const Subspace& s : result.subspaces) {
      EXPECT_EQ(static_cast<int>(s.size()), dim);
    }
  }
}

TEST(SurrogateTest, RespectsMaxResults) {
  const SyntheticDataset d = GenerateFigure1Dataset(3, 200);
  const Lof lof(15);
  SurrogateExplainer::Options options;
  options.max_results = 2;
  const SurrogateExplainer surrogate(options);
  EXPECT_LE(surrogate.Explain(d.dataset, lof, 0, 2).size(), 2u);
}

TEST(SurrogateTest, FidelityHighOnStructuredScores) {
  HicsGeneratorConfig config;
  config.num_points = 300;
  config.subspace_dims = {2, 3};
  config.seed = 5;
  const SyntheticDataset d = GenerateHicsDataset(config);
  const Lof lof(15);
  const SurrogateExplainer surrogate;
  // The tree cannot be perfect (LOF is not axis-aligned) but must explain
  // a nontrivial share of the score variance.
  EXPECT_GT(surrogate.Fidelity(d.dataset, lof), 0.2);
}

TEST(SurrogateTest, Deterministic) {
  const SyntheticDataset d = GenerateFigure1Dataset(4, 200);
  const Lof lof(15);
  const SurrogateExplainer surrogate;
  const RankedSubspaces a = surrogate.Explain(d.dataset, lof, 0, 2);
  const RankedSubspaces b = surrogate.Explain(d.dataset, lof, 0, 2);
  EXPECT_EQ(a.subspaces, b.subspaces);
  EXPECT_EQ(a.scores, b.scores);
}

TEST(SurrogateTest, ScoresSortedDescending) {
  const SyntheticDataset d = GenerateFigure1Dataset(5, 200);
  const Lof lof(15);
  const SurrogateExplainer surrogate;
  const RankedSubspaces result = surrogate.Explain(d.dataset, lof, 0, 2);
  for (std::size_t i = 1; i < result.scores.size(); ++i) {
    EXPECT_GE(result.scores[i - 1], result.scores[i]);
  }
}

TEST(SurrogateTest, CandidateFeatureKnobLimitsPool) {
  HicsGeneratorConfig config;
  config.num_points = 250;
  config.subspace_dims = {2, 2, 2};
  config.seed = 9;
  const SyntheticDataset d = GenerateHicsDataset(config);
  const Lof lof(15);
  SurrogateExplainer::Options options;
  options.candidate_features = 3;
  const SurrogateExplainer surrogate(options);
  const RankedSubspaces result = surrogate.Explain(
      d.dataset, lof, d.dataset.outlier_indices().front(), 2);
  EXPECT_LE(result.size(), 3u);  // C(3, 2) candidates at most.
}

}  // namespace
}  // namespace subex
