#include "core/pipeline.h"

#include <gtest/gtest.h>

#include "data/generators.h"
#include "detect/lof.h"
#include "explain/beam.h"
#include "explain/lookout.h"

namespace subex {
namespace {

SyntheticDataset SmallHics() {
  HicsGeneratorConfig config;
  config.num_points = 250;
  config.subspace_dims = {2, 2};
  config.seed = 77;
  return GenerateHicsDataset(config);
}

TEST(PointPipelineTest, PerfectExplainerGivesMapOne) {
  const SyntheticDataset d = SmallHics();
  const Lof lof(15);
  Beam::Options options;
  options.beam_width = 10;
  const Beam beam(options);
  const PipelineResult result = RunPointExplanationPipeline(
      d.dataset, d.ground_truth, lof, beam, 2);
  EXPECT_EQ(result.detector_name, "LOF");
  EXPECT_EQ(result.explainer_name, "Beam");
  EXPECT_EQ(result.explanation_dim, 2);
  EXPECT_EQ(result.num_points, 10);  // 2 subspaces x 5 outliers.
  EXPECT_GT(result.map, 0.9);
  EXPECT_GT(result.mean_recall, 0.9);
  EXPECT_GT(result.seconds, 0.0);
}

TEST(PointPipelineTest, EvaluatesOnlyPointsExplainedAtDim) {
  const SyntheticDataset d = SmallHics();
  const Lof lof(15);
  const Beam beam;
  // No ground-truth subspace has 3 dims -> nothing to evaluate.
  const PipelineResult result = RunPointExplanationPipeline(
      d.dataset, d.ground_truth, lof, beam, 3);
  EXPECT_EQ(result.num_points, 0);
  EXPECT_EQ(result.map, 0.0);
}

TEST(PointPipelineTest, MaxPointsSubsamples) {
  const SyntheticDataset d = SmallHics();
  const Lof lof(15);
  Beam::Options beam_options;
  beam_options.beam_width = 10;
  const Beam beam(beam_options);
  PipelineOptions options;
  options.max_points = 4;
  const PipelineResult result = RunPointExplanationPipeline(
      d.dataset, d.ground_truth, lof, beam, 2, options);
  EXPECT_EQ(result.num_points, 4);
}

TEST(PointPipelineTest, SubsampleDeterministicPerSeed) {
  const SyntheticDataset d = SmallHics();
  const Lof lof(15);
  Beam::Options beam_options;
  beam_options.beam_width = 5;
  const Beam beam(beam_options);
  PipelineOptions options;
  options.max_points = 3;
  const PipelineResult a = RunPointExplanationPipeline(
      d.dataset, d.ground_truth, lof, beam, 2, options);
  const PipelineResult b = RunPointExplanationPipeline(
      d.dataset, d.ground_truth, lof, beam, 2, options);
  EXPECT_EQ(a.map, b.map);
  EXPECT_EQ(a.mean_recall, b.mean_recall);
}

TEST(SummarizationPipelineTest, PerfectSummaryGivesMapOne) {
  const SyntheticDataset d = SmallHics();
  const Lof lof(15);
  LookOut::Options options;
  options.budget = 10;
  const LookOut lookout(options);
  const PipelineResult result = RunSummarizationPipeline(
      d.dataset, d.ground_truth, lof, lookout, 2);
  EXPECT_EQ(result.explainer_name, "LookOut");
  EXPECT_EQ(result.num_points, 10);
  // Both planted subspaces are selected in the first two greedy steps, so
  // every outlier sees its subspace within the top 2 -> MAP >= 0.5.
  EXPECT_GT(result.map, 0.5);
  EXPECT_GT(result.mean_recall, 0.9);
}

TEST(SummarizationPipelineTest, RuntimeCoversSummarizationOnly) {
  const SyntheticDataset d = SmallHics();
  const Lof lof(15);
  const LookOut lookout;
  const PipelineResult result = RunSummarizationPipeline(
      d.dataset, d.ground_truth, lof, lookout, 2);
  EXPECT_GT(result.seconds, 0.0);
  EXPECT_LT(result.seconds, 60.0);
}

}  // namespace
}  // namespace subex
