#include "data/ground_truth.h"

#include <gtest/gtest.h>

#include <vector>

namespace subex {
namespace {

GroundTruth MakeSample() {
  GroundTruth gt;
  gt.Add(3, Subspace({0, 1}));
  gt.Add(3, Subspace({2, 3, 4}));
  gt.Add(7, Subspace({0, 1}));
  gt.Add(9, Subspace({5, 6}));
  return gt;
}

TEST(GroundTruthTest, EmptyByDefault) {
  GroundTruth gt;
  EXPECT_TRUE(gt.empty());
  EXPECT_TRUE(gt.RelevantFor(0).empty());
  EXPECT_TRUE(gt.ExplainedPoints().empty());
}

TEST(GroundTruthTest, AddAndQuery) {
  const GroundTruth gt = MakeSample();
  EXPECT_EQ(gt.RelevantFor(3).size(), 2u);
  EXPECT_EQ(gt.RelevantFor(7).size(), 1u);
  EXPECT_TRUE(gt.RelevantFor(4).empty());
}

TEST(GroundTruthTest, AddIgnoresDuplicates) {
  GroundTruth gt;
  gt.Add(1, Subspace({0, 1}));
  gt.Add(1, Subspace({1, 0}));
  EXPECT_EQ(gt.RelevantFor(1).size(), 1u);
}

TEST(GroundTruthTest, ExplainedPointsAscending) {
  const GroundTruth gt = MakeSample();
  EXPECT_EQ(gt.ExplainedPoints(), (std::vector<int>{3, 7, 9}));
}

TEST(GroundTruthTest, PointsExplainedAtDimension) {
  const GroundTruth gt = MakeSample();
  EXPECT_EQ(gt.PointsExplainedAtDimension(2), (std::vector<int>{3, 7, 9}));
  EXPECT_EQ(gt.PointsExplainedAtDimension(3), (std::vector<int>{3}));
  EXPECT_TRUE(gt.PointsExplainedAtDimension(4).empty());
}

TEST(GroundTruthTest, FilterByDimension) {
  const GroundTruth filtered = MakeSample().FilterByDimension(2);
  EXPECT_EQ(filtered.RelevantFor(3).size(), 1u);
  EXPECT_EQ(filtered.RelevantFor(3).front(), Subspace({0, 1}));
  EXPECT_EQ(filtered.ExplainedPoints(), (std::vector<int>{3, 7, 9}));
}

TEST(GroundTruthTest, AllRelevantSubspacesDeduped) {
  const GroundTruth gt = MakeSample();
  const std::vector<Subspace> all = gt.AllRelevantSubspaces();
  EXPECT_EQ(all.size(), 3u);  // {0,1} shared by points 3 and 7.
}

TEST(GroundTruthTest, MeanOutliersPerSubspace) {
  const GroundTruth gt = MakeSample();
  // 4 (point, subspace) pairs over 3 distinct subspaces.
  EXPECT_NEAR(gt.MeanOutliersPerSubspace(), 4.0 / 3.0, 1e-12);
}

TEST(GroundTruthTest, MeanSubspacesPerPoint) {
  const GroundTruth gt = MakeSample();
  EXPECT_NEAR(gt.MeanSubspacesPerPoint(), 4.0 / 3.0, 1e-12);
}

TEST(GroundTruthTest, StatisticsOnEmpty) {
  GroundTruth gt;
  EXPECT_EQ(gt.MeanOutliersPerSubspace(), 0.0);
  EXPECT_EQ(gt.MeanSubspacesPerPoint(), 0.0);
}

}  // namespace
}  // namespace subex
