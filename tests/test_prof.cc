// Tests for the src/prof profiling layer: hardware-counter groups and
// spans (graceful when perf_event_open is denied, as in most CI
// containers), the SIGPROF sampling profiler, and the standalone
// GET /metrics listener bench binaries use.
//
// The ProfDegradation suite only runs when CI sets SUBEX_PROF_NO_PERF=1 /
// SUBEX_PROF_NO_TIMER=1 — the env overrides are latched at first probe, so
// forcing them from inside an already-probed process would be a lie.

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstdlib>
#include <cstring>
#include <string>

#include "obs/prometheus.h"
#include "obs/registry.h"
#include "obs/metrics_http.h"
#include "prof/perf_counters.h"
#include "prof/sampling_profiler.h"

// External linkage + noinline so -rdynamic puts the symbol where dladdr
// finds it and the sampler's leaf frame names this function.
__attribute__((noinline)) double SubexProfTestBurn(int spins) {
  volatile double acc = 1.0;
  for (int i = 0; i < spins; ++i) acc = acc * 1.0000001 + 0.5;
  return acc;
}

// Call through a volatile pointer: otherwise GCC const-propagates the spin
// counts into local `.constprop` clones that are absent from the dynamic
// symbol table, and the sampled frames come back as bare addresses.
double (*volatile SubexProfBurn)(int) = &SubexProfTestBurn;

namespace subex {
namespace {

TEST(PerfCounterValuesTest, RatioMathHandlesZeroDenominators) {
  PerfCounterValues values;
  EXPECT_EQ(values.IpcMilli(), 0);
  EXPECT_EQ(values.LlcMissPerKiloInst(), 0);
  values.cycles = 1000;
  values.instructions = 2500;
  values.llc_misses = 5;
  EXPECT_EQ(values.IpcMilli(), 2500);
  EXPECT_EQ(values.LlcMissPerKiloInst(), 2);
}

#ifndef SUBEX_OBS_DISABLED

TEST(PerfCounterGroupTest, UnavailableGroupReadsInvalidZeros) {
  PerfCounterGroup& group = PerfCounterGroup::ThisThread();
  const PerfCounterValues values = group.Read();
  if (!group.available()) {
    // Denied perf (containers, SUBEX_PROF_NO_PERF): everything is zeros,
    // nothing crashes.
    EXPECT_FALSE(values.valid);
    EXPECT_EQ(values.cycles, 0u);
  } else {
    EXPECT_TRUE(values.valid);
    // Monotonic: a later read can't go backwards.
    SubexProfBurn(10000);
    const PerfCounterValues later = group.Read();
    EXPECT_GE(later.cycles, values.cycles);
  }
}

TEST(ProfCounterSetTest, ForKernelRegistersAllSeriesEvenWhenPerfDenied) {
  MetricsRegistry registry;
  ProfCounterSet set = ProfCounterSet::ForKernel("test.kernel", &registry);
  ASSERT_NE(set.cycles, nullptr);
  ASSERT_NE(set.spans, nullptr);
  // The series exist (as zeros) regardless of perf availability, so
  // check_prometheus --require stays stable across environments.
  const std::string text = RenderPrometheusText(registry.Snapshot());
  EXPECT_NE(text.find("subex_prof_cycles_test_kernel_total"), std::string::npos)
      << text;
  EXPECT_NE(text.find("subex_prof_spans_test_kernel_total"), std::string::npos);
  EXPECT_NE(text.find("subex_prof_ipc_milli_test_kernel"), std::string::npos);
}

TEST(ProfCounterSetTest, CounterSpanAlwaysTicksSpansAndPublishesDeltas) {
  MetricsRegistry registry;
  ProfCounterSet set = ProfCounterSet::ForKernel("span.kernel", &registry);
  {
    CounterSpan span(&set);
    SubexProfBurn(200000);
  }
  {
    CounterSpan span(&set);
    SubexProfBurn(200000);
  }
  EXPECT_EQ(set.spans->value(), 2);
  if (PerfCounterGroup::ThisThread().available()) {
    EXPECT_GT(set.cycles->value(), 0);
    EXPECT_GT(set.instructions->value(), 0);
    EXPECT_GT(set.ipc_milli->value(), 0);
  } else {
    EXPECT_EQ(set.cycles->value(), 0);
    EXPECT_EQ(set.instructions->value(), 0);
  }
}

TEST(ProfCounterSetTest, NullSetIsANoOp) {
  CounterSpan span(nullptr);  // Must not crash.
}

TEST(ProfProcessMetricsTest, GaugesReflectRuntimeProbes) {
  MetricsRegistry registry;
  RegisterProfProcessMetrics(&registry);
  EXPECT_EQ(registry.GetGauge("prof.perf_available").value(),
            PerfCounterGroup::SupportedOnThisSystem() ? 1 : 0);
  EXPECT_EQ(registry.GetGauge("prof.sampler_supported").value(),
            SamplingProfiler::SupportedOnThisSystem() ? 1 : 0);
}

TEST(SamplingProfilerTest, StartSampleStopCollapse) {
  SamplingProfiler& profiler = SamplingProfiler::Global();
  if (!SamplingProfiler::SupportedOnThisSystem()) {
    GTEST_SKIP() << "per-thread SIGPROF timers unavailable here";
  }
  profiler.Clear();
  SamplingProfilerOptions options;
  options.sample_hz = 997;  // Fast so the test stays short.
  std::string error;
  ASSERT_TRUE(profiler.Start(options, &error)) << error;
  EXPECT_TRUE(profiler.running());
  EXPECT_EQ(profiler.sample_hz(), 997);

  // A second Start must refuse, not double-arm timers.
  EXPECT_FALSE(profiler.Start(options, &error));
  EXPECT_FALSE(error.empty());

  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (profiler.samples() < 20 &&
         std::chrono::steady_clock::now() < deadline) {
    SubexProfBurn(500000);
  }
  profiler.Stop();
  EXPECT_FALSE(profiler.running());
  ASSERT_GT(profiler.samples(), 0u);

  const std::string collapsed = profiler.ToCollapsedText();
  ASSERT_FALSE(collapsed.empty());
  // Collapsed-stack shape: "frame;frame;... count\n" and the burn loop
  // symbolized (requires the -rdynamic link the build adds).
  EXPECT_NE(collapsed.find(';'), std::string::npos);
  EXPECT_NE(collapsed.find("SubexProfTestBurn"), std::string::npos)
      << collapsed.substr(0, 2000);

  profiler.Clear();
  EXPECT_EQ(profiler.samples(), 0u);
  EXPECT_TRUE(profiler.ToCollapsedText().empty());
}

TEST(SamplingProfilerTest, StopWithoutStartIsSafe) {
  SamplingProfiler& profiler = SamplingProfiler::Global();
  profiler.Stop();
  EXPECT_FALSE(profiler.running());
  EXPECT_EQ(profiler.sample_hz(), 0);
  profiler.RegisterCurrentThread();  // No-op while stopped.
  profiler.UnregisterCurrentThread();
}

namespace {

/// One blocking HTTP GET against 127.0.0.1:`port`, returning the raw
/// response text ("" on connect failure).
std::string HttpGet(std::uint16_t port, const std::string& path) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return "";
  }
  const std::string request =
      "GET " + path + " HTTP/1.1\r\nHost: localhost\r\n\r\n";
  ::send(fd, request.data(), request.size(), 0);
  std::string response;
  char buf[4096];
  ssize_t got;
  while ((got = ::recv(fd, buf, sizeof(buf), 0)) > 0) {
    response.append(buf, static_cast<std::size_t>(got));
  }
  ::close(fd);
  return response;
}

}  // namespace

TEST(MetricsHttpServerTest, ServesPrometheusTextAndCountsScrapes) {
  RegisterProfProcessMetrics();  // Guarantees at least the prof gauges.
  MetricsHttpServer server;
  std::string error;
  ASSERT_TRUE(server.Start(0, &error)) << error;
  ASSERT_NE(server.port(), 0);
  EXPECT_TRUE(server.running());

  const std::string metrics = HttpGet(server.port(), "/metrics");
  EXPECT_NE(metrics.find("200 OK"), std::string::npos) << metrics;
  EXPECT_NE(metrics.find("subex_prof_perf_available"), std::string::npos);

  const std::string missing = HttpGet(server.port(), "/nope");
  EXPECT_NE(missing.find("404"), std::string::npos) << missing;

  // requests() counts served scrapes only, not 404s.
  EXPECT_EQ(server.requests(), 1u);
  server.Stop();
  EXPECT_FALSE(server.running());
  server.Stop();  // Idempotent.
}

// --- Deterministic denial assertions (run by CI with the env set) -------

TEST(ProfDegradation, PerfForcedOffByEnvironment) {
  if (std::getenv("SUBEX_PROF_NO_PERF") == nullptr) {
    GTEST_SKIP() << "set SUBEX_PROF_NO_PERF=1 to exercise the denied path";
  }
  EXPECT_FALSE(PerfCounterGroup::SupportedOnThisSystem());
  PerfCounterGroup& group = PerfCounterGroup::ThisThread();
  EXPECT_FALSE(group.available());
  EXPECT_FALSE(group.Read().valid);
  // Spans still tick so span-rate dashboards keep working without a PMU.
  MetricsRegistry registry;
  ProfCounterSet set = ProfCounterSet::ForKernel("denied", &registry);
  { CounterSpan span(&set); }
  EXPECT_EQ(set.spans->value(), 1);
  EXPECT_EQ(set.cycles->value(), 0);
  RegisterProfProcessMetrics(&registry);
  EXPECT_EQ(registry.GetGauge("prof.perf_available").value(), 0);
}

TEST(ProfDegradation, SamplerForcedOffByEnvironment) {
  if (std::getenv("SUBEX_PROF_NO_TIMER") == nullptr) {
    GTEST_SKIP() << "set SUBEX_PROF_NO_TIMER=1 to exercise the denied path";
  }
  EXPECT_FALSE(SamplingProfiler::SupportedOnThisSystem());
  SamplingProfiler& profiler = SamplingProfiler::Global();
  std::string error;
  EXPECT_FALSE(profiler.Start({}, &error));
  EXPECT_FALSE(error.empty());
  EXPECT_FALSE(profiler.running());
  EXPECT_TRUE(profiler.ToCollapsedText().empty());
}

#else  // SUBEX_OBS_DISABLED

// The disabled stubs must be inert but callable — code written against the
// profiling API compiles and runs unchanged.
TEST(ProfDisabledTest, StubsAreInertNoOps) {
  EXPECT_FALSE(PerfCounterGroup::SupportedOnThisSystem());
  EXPECT_FALSE(PerfCounterGroup::ThisThread().available());
  EXPECT_FALSE(PerfCounterGroup::ThisThread().Read().valid);
  ProfCounterSet set = ProfCounterSet::ForKernel("anything");
  { CounterSpan span(&set); }
  RegisterProfProcessMetrics();

  EXPECT_FALSE(SamplingProfiler::SupportedOnThisSystem());
  SamplingProfiler& profiler = SamplingProfiler::Global();
  std::string error;
  EXPECT_FALSE(profiler.Start({}, &error));
  EXPECT_EQ(error, "observability compiled out");
  EXPECT_EQ(profiler.samples(), 0u);
  EXPECT_TRUE(profiler.ToCollapsedText().empty());

  MetricsHttpServer server;
  EXPECT_FALSE(server.Start(0, &error));
  EXPECT_FALSE(server.running());
  server.Stop();
}

#endif  // SUBEX_OBS_DISABLED

}  // namespace
}  // namespace subex
