// Systematic interface-contract tests for every explanation algorithm in
// the testbed, parameterized over (algorithm, target dimensionality):
// fixed-dimensionality output, canonical subspaces, no duplicates,
// descending scores, and determinism. These complement the per-algorithm
// behavioural tests with the contracts the pipelines rely on.

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <tuple>

#include "data/generators.h"
#include "detect/lof.h"
#include "explain/beam.h"
#include "explain/hics.h"
#include "explain/lookout.h"
#include "explain/refout.h"
#include "explain/surrogate.h"

namespace subex {
namespace {

// A single shared dataset keeps the sweep fast.
const SyntheticDataset& SharedData() {
  static const SyntheticDataset* const kData = [] {
    HicsGeneratorConfig config;
    config.num_points = 250;
    config.subspace_dims = {2, 3, 2};
    config.seed = 2024;
    return new SyntheticDataset(GenerateHicsDataset(config));
  }();
  return *kData;
}

enum class Algo { kBeam, kRefOut, kSurrogate, kLookOut, kHics };

const char* AlgoName(Algo algo) {
  switch (algo) {
    case Algo::kBeam:
      return "Beam";
    case Algo::kRefOut:
      return "RefOut";
    case Algo::kSurrogate:
      return "Surrogate";
    case Algo::kLookOut:
      return "LookOut";
    case Algo::kHics:
      return "HiCS";
  }
  return "?";
}

// Runs the algorithm uniformly: point explainers on the first outlier,
// summarizers on the whole outlier set.
RankedSubspaces RunAlgo(Algo algo, int dim) {
  const SyntheticDataset& d = SharedData();
  static const Lof lof(15);
  const int point = d.dataset.outlier_indices().front();
  switch (algo) {
    case Algo::kBeam: {
      Beam::Options options;
      options.beam_width = 10;
      return Beam(options).Explain(d.dataset, lof, point, dim);
    }
    case Algo::kRefOut: {
      RefOut::Options options;
      options.pool_size = 40;
      options.beam_width = 10;
      return RefOut(options).Explain(d.dataset, lof, point, dim);
    }
    case Algo::kSurrogate:
      return SurrogateExplainer().Explain(d.dataset, lof, point, dim);
    case Algo::kLookOut: {
      LookOut::Options options;
      options.budget = 20;
      return LookOut(options).Summarize(d.dataset, lof,
                                        d.dataset.outlier_indices(), dim);
    }
    case Algo::kHics: {
      Hics::Options options;
      options.candidate_cutoff = 30;
      options.mc_iterations = 15;
      return Hics(options).Summarize(d.dataset, lof,
                                     d.dataset.outlier_indices(), dim);
    }
  }
  return {};
}

class ExplainerContractTest
    : public ::testing::TestWithParam<std::tuple<Algo, int>> {};

TEST_P(ExplainerContractTest, ReturnsOnlyTargetDimensionality) {
  const auto [algo, dim] = GetParam();
  const RankedSubspaces result = RunAlgo(algo, dim);
  ASSERT_FALSE(result.empty());
  for (const Subspace& s : result.subspaces) {
    EXPECT_EQ(static_cast<int>(s.size()), dim);
  }
}

TEST_P(ExplainerContractTest, FeaturesInRange) {
  const auto [algo, dim] = GetParam();
  const int d = static_cast<int>(SharedData().dataset.num_features());
  for (const Subspace& s : RunAlgo(algo, dim).subspaces) {
    for (FeatureId f : s.features()) {
      EXPECT_GE(f, 0);
      EXPECT_LT(f, d);
    }
  }
}

TEST_P(ExplainerContractTest, NoDuplicateSubspaces) {
  const auto [algo, dim] = GetParam();
  std::vector<Subspace> sorted = RunAlgo(algo, dim).subspaces;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(std::adjacent_find(sorted.begin(), sorted.end()), sorted.end());
}

TEST_P(ExplainerContractTest, ScoresAlignedWithSubspaces) {
  const auto [algo, dim] = GetParam();
  const RankedSubspaces result = RunAlgo(algo, dim);
  EXPECT_EQ(result.subspaces.size(), result.scores.size());
}

TEST_P(ExplainerContractTest, ScoresDescendingUnlessGreedyOrder) {
  const auto [algo, dim] = GetParam();
  if (algo == Algo::kLookOut) {
    // LookOut's order is the greedy selection order; its marginal gains
    // are non-increasing, which is the same check.
  }
  const RankedSubspaces result = RunAlgo(algo, dim);
  for (std::size_t i = 1; i < result.scores.size(); ++i) {
    EXPECT_GE(result.scores[i - 1], result.scores[i] - 1e-9);
  }
}

TEST_P(ExplainerContractTest, Deterministic) {
  const auto [algo, dim] = GetParam();
  const RankedSubspaces a = RunAlgo(algo, dim);
  const RankedSubspaces b = RunAlgo(algo, dim);
  EXPECT_EQ(a.subspaces, b.subspaces);
  EXPECT_EQ(a.scores, b.scores);
}

INSTANTIATE_TEST_SUITE_P(
    AllAlgorithms, ExplainerContractTest,
    ::testing::Combine(::testing::Values(Algo::kBeam, Algo::kRefOut,
                                         Algo::kSurrogate, Algo::kLookOut,
                                         Algo::kHics),
                       ::testing::Values(2, 3)),
    [](const auto& info) {
      return std::string(AlgoName(std::get<0>(info.param))) + "_dim" +
             std::to_string(std::get<1>(info.param));
    });

}  // namespace
}  // namespace subex
