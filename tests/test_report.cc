#include "core/report.h"

#include <gtest/gtest.h>

namespace subex {
namespace {

TEST(TextTableTest, RendersAlignedColumns) {
  TextTable table;
  table.SetHeader({"name", "value"});
  table.AddRow({"a", "1"});
  table.AddRow({"long-name", "2.5"});
  const std::string out = table.Render();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("long-name"), std::string::npos);
  // Header separator present.
  EXPECT_NE(out.find("----"), std::string::npos);
  // Column alignment: "value" starts at the same offset in header as "1"
  // would in a row padded to the widest cell ("long-name").
  const std::size_t header_value = out.find("value");
  EXPECT_EQ(header_value, std::string("long-name  ").size());
}

TEST(TextTableTest, EmptyTableRendersHeaderOnly) {
  TextTable table;
  table.SetHeader({"x"});
  const std::string out = table.Render();
  EXPECT_NE(out.find('x'), std::string::npos);
}

TEST(FormatDoubleTest, RoundsToDecimals) {
  EXPECT_EQ(FormatDouble(0.8349, 2), "0.83");
  EXPECT_EQ(FormatDouble(1.0, 2), "1.00");
  EXPECT_EQ(FormatDouble(0.8355, 3), "0.836");
}

TEST(FormatSecondsTest, AdaptiveUnits) {
  EXPECT_EQ(FormatSeconds(0.0421), "42ms");
  EXPECT_EQ(FormatSeconds(3.21), "3.2s");
  EXPECT_EQ(FormatSeconds(250.0), "250s");
}

}  // namespace
}  // namespace subex
