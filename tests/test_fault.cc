// The fault registry itself: deterministic firing, trigger rules, spec
// parsing, the RAII test hook, and the disarmed fast path.

#include "fault/fault.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

namespace subex {
namespace {

TEST(Fault, DisarmedEvaluatesToFalseAndCountsNothing) {
  FaultControl control;
  FaultAction action;
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(SUBEX_FAULT(FaultPoint::kSocketRead, &action));
  }
  const FaultStats stats = FaultRegistry::Global().stats();
  EXPECT_EQ(stats.evaluations, 0u);
  EXPECT_EQ(stats.injected, 0u);
  EXPECT_FALSE(FaultRegistry::Global().any_armed());
}

TEST(Fault, CertainRuleFiresEveryTime) {
  FaultControl control;
  FaultRule rule;
  rule.action = FaultAction::kEintr;
  control.Arm(FaultPoint::kWalAppend, rule);
  FaultAction action = FaultAction::kFail;
  for (int i = 0; i < 10; ++i) {
    EXPECT_TRUE(SUBEX_FAULT(FaultPoint::kWalAppend, &action));
    EXPECT_EQ(action, FaultAction::kEintr);
  }
  const FaultStats stats = FaultRegistry::Global().stats();
  EXPECT_EQ(stats.injected, 10u);
  EXPECT_EQ(stats.evaluations, 10u);
  // Other points stay silent.
  EXPECT_FALSE(SUBEX_FAULT(FaultPoint::kSocketRead, &action));
}

TEST(Fault, AfterSkipsTheFirstNEvaluations) {
  FaultControl control;
  FaultRule rule;
  rule.after = 5;
  control.Arm(FaultPoint::kSocketWrite, rule);
  FaultAction action;
  for (int i = 0; i < 5; ++i) {
    EXPECT_FALSE(SUBEX_FAULT(FaultPoint::kSocketWrite, &action)) << i;
  }
  EXPECT_TRUE(SUBEX_FAULT(FaultPoint::kSocketWrite, &action));
}

TEST(Fault, LimitCapsTotalInjections) {
  FaultControl control;
  FaultRule rule;
  rule.limit = 3;
  control.Arm(FaultPoint::kCacheAdmit, rule);
  FaultAction action;
  int fired = 0;
  for (int i = 0; i < 50; ++i) {
    if (SUBEX_FAULT(FaultPoint::kCacheAdmit, &action)) ++fired;
  }
  EXPECT_EQ(fired, 3);
  EXPECT_EQ(FaultRegistry::Global().stats().injected, 3u);
}

TEST(Fault, ProbabilityIsDeterministicInTheSeed) {
  auto run = [](std::uint64_t seed) {
    FaultControl control(seed);
    FaultRule rule;
    rule.probability = 0.3;
    FaultRegistry::Global().Arm(FaultPoint::kSocketRead, rule);
    std::vector<bool> fired;
    FaultAction action;
    for (int i = 0; i < 200; ++i) {
      fired.push_back(SUBEX_FAULT(FaultPoint::kSocketRead, &action));
    }
    return fired;
  };
  const std::vector<bool> a = run(42);
  const std::vector<bool> b = run(42);
  const std::vector<bool> c = run(43);
  EXPECT_EQ(a, b);  // Same seed: bit-for-bit the same chaos.
  EXPECT_NE(a, c);  // Different seed: a different (but replayable) run.
  const int fired_a = static_cast<int>(std::count(a.begin(), a.end(), true));
  EXPECT_GT(fired_a, 200 * 3 / 10 / 3);  // Loosely near p=0.3.
  EXPECT_LT(fired_a, 200 * 3 * 2 / 10);
}

TEST(Fault, ArmResetsCountersSoAfterIsRelativeToArming) {
  FaultControl control;
  FaultRule always;
  control.Arm(FaultPoint::kMemReserve, always);
  FaultAction action;
  EXPECT_TRUE(SUBEX_FAULT(FaultPoint::kMemReserve, &action));
  FaultRule after_two;
  after_two.after = 2;
  control.Arm(FaultPoint::kMemReserve, after_two);
  EXPECT_FALSE(SUBEX_FAULT(FaultPoint::kMemReserve, &action));
  EXPECT_FALSE(SUBEX_FAULT(FaultPoint::kMemReserve, &action));
  EXPECT_TRUE(SUBEX_FAULT(FaultPoint::kMemReserve, &action));
}

TEST(Fault, SpecParsesRulesAndActions) {
  FaultControl control;
  std::string error;
  ASSERT_TRUE(FaultRegistry::Global().ConfigureFromSpec(
      "socket_read=1:limit=2;wal_append=1:after=1:action=short;"
      "columnar_pread=0.5:action=eintr",
      &error))
      << error;
  FaultAction action;
  EXPECT_TRUE(SUBEX_FAULT(FaultPoint::kSocketRead, &action));
  EXPECT_TRUE(SUBEX_FAULT(FaultPoint::kSocketRead, &action));
  EXPECT_FALSE(SUBEX_FAULT(FaultPoint::kSocketRead, &action));  // limit=2.
  EXPECT_FALSE(SUBEX_FAULT(FaultPoint::kWalAppend, &action));   // after=1.
  EXPECT_TRUE(SUBEX_FAULT(FaultPoint::kWalAppend, &action));
  EXPECT_EQ(action, FaultAction::kShort);
}

TEST(Fault, SpecRejectsMalformedEntries) {
  FaultControl control;
  std::string error;
  EXPECT_FALSE(FaultRegistry::Global().ConfigureFromSpec("nope=1", &error));
  EXPECT_FALSE(error.empty());
  EXPECT_FALSE(FaultRegistry::Global().ConfigureFromSpec("socket_read", &error));
  EXPECT_FALSE(
      FaultRegistry::Global().ConfigureFromSpec("socket_read=zap", &error));
  EXPECT_FALSE(FaultRegistry::Global().ConfigureFromSpec(
      "socket_read=1:action=explode", &error));
  EXPECT_FALSE(FaultRegistry::Global().ConfigureFromSpec(
      "socket_read=1:frobnicate=2", &error));
}

TEST(Fault, PointNamesRoundTrip) {
  for (std::size_t i = 0; i < kNumFaultPoints; ++i) {
    const FaultPoint point = static_cast<FaultPoint>(i);
    FaultPoint parsed;
    ASSERT_TRUE(ParseFaultPoint(FaultPointName(point), &parsed))
        << FaultPointName(point);
    EXPECT_EQ(parsed, point);
  }
  FaultPoint parsed;
  EXPECT_FALSE(ParseFaultPoint("no_such_point", &parsed));
}

TEST(Fault, ControlDisarmsOnScopeExit) {
  {
    FaultControl control;
    control.Arm(FaultPoint::kSocketRead, FaultRule{});
    EXPECT_TRUE(FaultRegistry::Global().any_armed());
  }
  EXPECT_FALSE(FaultRegistry::Global().any_armed());
  FaultAction action;
  EXPECT_FALSE(SUBEX_FAULT(FaultPoint::kSocketRead, &action));
}

TEST(Fault, StatsJsonListsOnlyActivePoints) {
  FaultControl control;
  control.Arm(FaultPoint::kWalSync, FaultRule{});
  FaultAction action;
  (void)SUBEX_FAULT(FaultPoint::kWalSync, &action);
  const std::string json = FaultRegistry::Global().stats().ToJson();
  EXPECT_NE(json.find("wal_sync"), std::string::npos) << json;
  EXPECT_EQ(json.find("socket_read"), std::string::npos) << json;
}

}  // namespace
}  // namespace subex
