// Property sweeps over the HiCS-style generator: the §3.2 structural
// invariants must hold for every subspace-dimension mix and seed, not just
// the configurations the behavioural tests use.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <tuple>

#include "data/generators.h"

namespace subex {
namespace {

using Config = std::tuple<std::vector<int>, std::uint64_t>;

class HicsGeneratorPropertyTest : public ::testing::TestWithParam<Config> {
 protected:
  SyntheticDataset Generate() const {
    HicsGeneratorConfig config;
    config.num_points = 240;
    config.subspace_dims = std::get<0>(GetParam());
    config.seed = std::get<1>(GetParam());
    return GenerateHicsDataset(config);
  }
};

TEST_P(HicsGeneratorPropertyTest, FeaturePartition) {
  const SyntheticDataset d = Generate();
  std::set<FeatureId> covered;
  std::size_t total = 0;
  for (const Subspace& s : d.relevant_subspaces) {
    total += s.size();
    covered.insert(s.features().begin(), s.features().end());
  }
  EXPECT_EQ(covered.size(), total);  // Disjoint.
  EXPECT_EQ(covered.size(), d.dataset.num_features());  // Exhaustive.
}

TEST_P(HicsGeneratorPropertyTest, OutlierCountMatchesSlots) {
  const SyntheticDataset d = Generate();
  EXPECT_EQ(d.dataset.outlier_indices().size(),
            5 * d.relevant_subspaces.size());
}

TEST_P(HicsGeneratorPropertyTest, ValuesInUnitInterval) {
  const SyntheticDataset d = Generate();
  for (std::size_t p = 0; p < d.dataset.num_points(); ++p) {
    for (std::size_t f = 0; f < d.dataset.num_features(); ++f) {
      EXPECT_GE(d.dataset.Value(p, f), 0.0);
      EXPECT_LE(d.dataset.Value(p, f), 1.0);
    }
  }
}

// The marginal-population property: every coordinate of a planted outlier
// lies inside the inlier range of that feature (no 1d-visible outliers).
TEST_P(HicsGeneratorPropertyTest, OutlierMarginalsPopulated) {
  const SyntheticDataset d = Generate();
  for (std::size_t f = 0; f < d.dataset.num_features(); ++f) {
    double lo = 1e9;
    double hi = -1e9;
    for (std::size_t p = 0; p < d.dataset.num_points(); ++p) {
      if (d.dataset.IsOutlier(static_cast<int>(p))) continue;
      lo = std::min(lo, d.dataset.Value(p, f));
      hi = std::max(hi, d.dataset.Value(p, f));
    }
    for (int p : d.dataset.outlier_indices()) {
      EXPECT_GE(d.dataset.Value(p, f), lo - 0.1);
      EXPECT_LE(d.dataset.Value(p, f), hi + 0.1);
    }
  }
}

// The parity property behind projection masking: dropping any one feature
// of the relevant subspace, the outlier is close to some inlier in the
// remaining coordinates.
TEST_P(HicsGeneratorPropertyTest, ProjectionsNearPopulatedAtoms) {
  const SyntheticDataset d = Generate();
  for (int p : d.dataset.outlier_indices()) {
    for (const Subspace& s : d.ground_truth.RelevantFor(p)) {
      for (FeatureId dropped : s.features()) {
        double best = 1e18;
        for (std::size_t q = 0; q < d.dataset.num_points(); ++q) {
          if (d.dataset.IsOutlier(static_cast<int>(q))) continue;
          double dist_sq = 0.0;
          for (FeatureId f : s.features()) {
            if (f == dropped) continue;
            const double delta = d.dataset.Value(p, f) -
                                 d.dataset.Value(q, f);
            dist_sq += delta * delta;
          }
          best = std::min(best, dist_sq);
        }
        // Within a few noise standard deviations of a populated atom.
        EXPECT_LT(std::sqrt(best), 0.25)
            << "outlier " << p << " exposed when dropping f" << dropped
            << " from " << s.ToString();
      }
    }
  }
}

// Joint-emptiness: within its full relevant subspace the outlier is far
// from every inlier.
TEST_P(HicsGeneratorPropertyTest, JointlyIsolated) {
  const SyntheticDataset d = Generate();
  for (int p : d.dataset.outlier_indices()) {
    for (const Subspace& s : d.ground_truth.RelevantFor(p)) {
      double best = 1e18;
      for (std::size_t q = 0; q < d.dataset.num_points(); ++q) {
        if (d.dataset.IsOutlier(static_cast<int>(q))) continue;
        double dist_sq = 0.0;
        for (FeatureId f : s.features()) {
          const double delta =
              d.dataset.Value(p, f) - d.dataset.Value(static_cast<int>(q), f);
          dist_sq += delta * delta;
        }
        best = std::min(best, dist_sq);
      }
      EXPECT_GT(std::sqrt(best), 0.2)
          << "outlier " << p << " not isolated in " << s.ToString();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    DimensionMixes, HicsGeneratorPropertyTest,
    ::testing::Values(Config{{2, 2}, 1}, Config{{3, 3}, 2},
                      Config{{4, 4}, 3}, Config{{5, 5}, 4},
                      Config{{2, 3, 4, 5}, 5}, Config{{2, 5, 3}, 99},
                      Config{{2, 2}, 17}, Config{{2, 3, 4, 5}, 1234}));

}  // namespace
}  // namespace subex
