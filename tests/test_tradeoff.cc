#include "core/tradeoff.h"

#include <gtest/gtest.h>

namespace subex {
namespace {

PipelineScore Make(const char* algo, const char* det, double map,
                   double seconds, bool generic = true) {
  PipelineScore s;
  s.explainer = algo;
  s.detector = det;
  s.map = map;
  s.seconds = seconds;
  s.generic = generic;
  return s;
}

TEST(TradeoffTest, PicksHighestMap) {
  PipelineScore best;
  ASSERT_TRUE(SelectBestTradeoff({Make("Beam", "LOF", 0.9, 10.0),
                                  Make("RefOut", "LOF", 0.5, 1.0)},
                                 {}, &best));
  EXPECT_EQ(best.Label(), "Beam LOF");
}

TEST(TradeoffTest, TieBandResolvedByRuntime) {
  PipelineScore best;
  ASSERT_TRUE(SelectBestTradeoff({Make("Beam", "LOF", 0.95, 10.0),
                                  Make("RefOut", "LOF", 0.9, 1.0)},
                                 {}, &best));
  // Within the default 0.1 MAP tolerance, the faster pipeline wins.
  EXPECT_EQ(best.Label(), "RefOut LOF");
}

TEST(TradeoffTest, GenericPreferredOverSpecificInTieBand) {
  PipelineScore best;
  ASSERT_TRUE(SelectBestTradeoff(
      {Make("HiCS", "LOF", 0.95, 1.0, /*generic=*/false),
       Make("LookOut", "LOF", 0.9, 1.0, /*generic=*/true)},
      {}, &best));
  EXPECT_EQ(best.Label(), "LookOut LOF");
}

TEST(TradeoffTest, SpecificWinsWhenClearlyMoreEffective) {
  PipelineScore best;
  ASSERT_TRUE(SelectBestTradeoff(
      {Make("HiCS", "LOF", 0.95, 5.0, /*generic=*/false),
       Make("LookOut", "LOF", 0.3, 1.0, /*generic=*/true)},
      {}, &best));
  EXPECT_EQ(best.Label(), "HiCS LOF");
}

TEST(TradeoffTest, AllBelowMinMapSelectsNothing) {
  PipelineScore best = Make("sentinel", "none", -1, -1);
  EXPECT_FALSE(SelectBestTradeoff({Make("Beam", "LOF", 0.02, 1.0),
                                   Make("RefOut", "LOF", 0.0, 1.0)},
                                  {}, &best));
  EXPECT_EQ(best.Label(), "sentinel none");  // Untouched.
}

TEST(TradeoffTest, EmptyInputSelectsNothing) {
  PipelineScore best;
  EXPECT_FALSE(SelectBestTradeoff({}, {}, &best));
}

TEST(TradeoffTest, EqualEverythingPicksHigherMap) {
  PipelineScore best;
  ASSERT_TRUE(SelectBestTradeoff({Make("A", "LOF", 0.90, 1.0),
                                  Make("B", "LOF", 0.95, 1.0)},
                                 {}, &best));
  EXPECT_EQ(best.Label(), "B LOF");
}

TEST(TradeoffTest, CustomToleranceNarrowsTieBand) {
  TradeoffOptions options;
  options.map_tolerance = 0.01;
  PipelineScore best;
  ASSERT_TRUE(SelectBestTradeoff({Make("Beam", "LOF", 0.95, 10.0),
                                  Make("RefOut", "LOF", 0.9, 1.0)},
                                 options, &best));
  // 0.9 is now outside the band; slower-but-better Beam wins.
  EXPECT_EQ(best.Label(), "Beam LOF");
}

}  // namespace
}  // namespace subex
