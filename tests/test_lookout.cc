#include "explain/lookout.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "data/generators.h"
#include "detect/lof.h"

namespace subex {
namespace {

TEST(LookOutTest, SummaryCoversBothOutliers) {
  const SyntheticDataset d = GenerateFigure1Dataset(1, 200);
  const Lof lof(15);
  LookOut::Options options;
  options.budget = 2;
  const LookOut lookout(options);
  const RankedSubspaces summary =
      lookout.Summarize(d.dataset, lof, d.dataset.outlier_indices(), 2);
  ASSERT_FALSE(summary.empty());
  // Concise-summary semantics: each outlier must receive a high
  // standardized score in at least one selected subspace. (Note o1 and o2
  // both deviate in {0,2} as a side effect of the construction, so the
  // greedy selection may legitimately cover both with a single subspace.)
  for (int p : d.dataset.outlier_indices()) {
    double best = -1e9;
    for (const Subspace& s : summary.subspaces) {
      best = std::max(best, ScoreStandardized(lof, d.dataset, s)[p]);
    }
    EXPECT_GT(best, 3.0) << "outlier " << p << " not covered";
  }
}

TEST(LookOutTest, GreedyPicksSubspaceMaximizingTotalScoreFirst) {
  HicsGeneratorConfig config;
  config.num_points = 300;
  config.subspace_dims = {2, 2};
  config.seed = 21;
  const SyntheticDataset d = GenerateHicsDataset(config);
  const Lof lof(15);
  LookOut::Options options;
  options.budget = 4;
  const LookOut lookout(options);
  const RankedSubspaces summary =
      lookout.Summarize(d.dataset, lof, d.dataset.outlier_indices(), 2);
  ASSERT_GE(summary.size(), 2u);
  // The two planted subspaces must be the first two selections (each
  // maximizes five outliers' scores).
  std::vector<Subspace> first_two = {summary.subspaces[0],
                                     summary.subspaces[1]};
  std::sort(first_two.begin(), first_two.end());
  std::vector<Subspace> planted = d.relevant_subspaces;
  std::sort(planted.begin(), planted.end());
  EXPECT_EQ(first_two, planted);
}

TEST(LookOutTest, MarginalGainsNonIncreasing) {
  const SyntheticDataset d = GenerateFigure1Dataset(2, 200);
  const Lof lof(15);
  LookOut::Options options;
  options.budget = 3;
  const LookOut lookout(options);
  const RankedSubspaces summary =
      lookout.Summarize(d.dataset, lof, d.dataset.outlier_indices(), 2);
  for (std::size_t i = 1; i < summary.scores.size(); ++i) {
    // Submodularity: greedy gains never increase.
    EXPECT_LE(summary.scores[i], summary.scores[i - 1] + 1e-9);
  }
}

TEST(LookOutTest, BudgetCapsSummarySize) {
  const SyntheticDataset d = GenerateFigure1Dataset(3, 150);
  const Lof lof(15);
  LookOut::Options options;
  options.budget = 1;
  const LookOut lookout(options);
  EXPECT_LE(
      lookout.Summarize(d.dataset, lof, d.dataset.outlier_indices(), 2)
          .size(),
      1u);
}

TEST(LookOutTest, ReturnsOnlyTargetDimensionality) {
  const SyntheticDataset d = GenerateFigure1Dataset(4, 150);
  const Lof lof(15);
  const LookOut lookout;
  const RankedSubspaces summary =
      lookout.Summarize(d.dataset, lof, d.dataset.outlier_indices(), 3);
  for (const Subspace& s : summary.subspaces) EXPECT_EQ(s.size(), 3u);
}

TEST(LookOutTest, CandidateCapSamplesInsteadOfEnumerating) {
  HicsGeneratorConfig config;
  config.num_points = 150;
  config.subspace_dims = {2, 3, 3, 4};  // 12 features, C(12,2)=66.
  config.seed = 31;
  const SyntheticDataset d = GenerateHicsDataset(config);
  const Lof lof(15);
  LookOut::Options options;
  options.budget = 5;
  options.max_candidates = 20;
  const LookOut lookout(options);
  const RankedSubspaces summary =
      lookout.Summarize(d.dataset, lof, d.dataset.outlier_indices(), 2);
  EXPECT_LE(summary.size(), 5u);
  EXPECT_FALSE(summary.empty());
}

TEST(LookOutTest, Deterministic) {
  const SyntheticDataset d = GenerateFigure1Dataset(5, 150);
  const Lof lof(15);
  const LookOut lookout;
  const RankedSubspaces a =
      lookout.Summarize(d.dataset, lof, d.dataset.outlier_indices(), 2);
  const RankedSubspaces b =
      lookout.Summarize(d.dataset, lof, d.dataset.outlier_indices(), 2);
  EXPECT_EQ(a.subspaces, b.subspaces);
  EXPECT_EQ(a.scores, b.scores);
}

TEST(LookOutTest, NoDuplicateSelections) {
  const SyntheticDataset d = GenerateFigure1Dataset(6, 150);
  const Lof lof(15);
  const LookOut lookout;
  const RankedSubspaces summary =
      lookout.Summarize(d.dataset, lof, d.dataset.outlier_indices(), 2);
  std::vector<Subspace> sorted = summary.subspaces;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(std::adjacent_find(sorted.begin(), sorted.end()), sorted.end());
}

}  // namespace
}  // namespace subex
