// Deterministic fuzz of the wire parsers: valid frames survive arbitrary
// chunking, and truncated/corrupted/garbage inputs are rejected cleanly —
// no crash, no hang, no out-of-bounds read (the sanitizer CI lane turns
// any of those into a failure).

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "net/frame.h"
#include "net/protocol.h"
#include "net/wire.h"

namespace subex {
namespace {

/// Every request encoder, exercised with and without the optional trace id
/// and deadline so the fuzz covers all three header layouts.
std::vector<std::vector<std::uint8_t>> CorpusPayloads() {
  std::vector<std::vector<std::uint8_t>> corpus;
  const std::uint64_t trace_ids[] = {0, 0xfeedfacecafebeefull};
  const std::uint32_t deadlines[] = {0, 1500};
  for (const std::uint64_t trace : trace_ids) {
    for (const std::uint32_t deadline : deadlines) {
      corpus.push_back(EncodeScoreRequest(
          7, ScoreRequest{"LOF", Subspace({0, 2, 5})}, trace, deadline));
      corpus.push_back(EncodeExplainRequest(
          8, ExplainRequest{"LOF", "Beam", 12, 2, 5}, trace, deadline));
      corpus.push_back(EncodeStatsRequest(9, trace, deadline));
      corpus.push_back(
          EncodeTraceDumpRequest(10, TraceDumpRequest{true}, trace, deadline));
      corpus.push_back(EncodeIngestRequest(
          11, IngestRequest{"stream", 2, {1.0, 2.0, 3.0, 4.0}}, trace,
          deadline));
      corpus.push_back(EncodeOnlineScoreRequest(
          12, OnlineScoreRequest{"stream", "LODA", Subspace({1})}, trace,
          deadline));
      corpus.push_back(EncodeOnlineExplainRequest(
          13, OnlineExplainRequest{"stream", "LODA", "Beam", 3, 2, 4}, trace,
          deadline));
      corpus.push_back(EncodeProfDumpRequest(
          14, ProfDumpRequest{ProfAction::kStart, 97, false}, trace,
          deadline));
    }
  }
  return corpus;
}

/// Header + matching body decode; returns false on any rejection. The fuzz
/// only cares that this never crashes and that intact payloads pass.
bool DecodePayload(const std::vector<std::uint8_t>& payload) {
  WireReader reader(payload);
  MessageHeader header;
  if (!DecodeHeader(reader, &header)) return false;
  switch (header.type) {
    case MessageType::kScore: {
      ScoreRequest out;
      return DecodeScoreRequest(reader, &out);
    }
    case MessageType::kExplain: {
      ExplainRequest out;
      return DecodeExplainRequest(reader, &out);
    }
    case MessageType::kStats:
      return reader.AtEnd();
    case MessageType::kTraceDump: {
      TraceDumpRequest out;
      return DecodeTraceDumpRequest(reader, &out);
    }
    case MessageType::kIngest: {
      IngestRequest out;
      return DecodeIngestRequest(reader, &out);
    }
    case MessageType::kOnlineScore: {
      OnlineScoreRequest out;
      return DecodeOnlineScoreRequest(reader, &out);
    }
    case MessageType::kOnlineExplain: {
      OnlineExplainRequest out;
      return DecodeOnlineExplainRequest(reader, &out);
    }
    case MessageType::kProfDump: {
      ProfDumpRequest out;
      return DecodeProfDumpRequest(reader, &out);
    }
    default:
      return false;
  }
}

/// Feeds `stream` to a decoder in random chunks and decodes every frame
/// that comes out. Returns the number of successfully decoded payloads.
int DrainInChunks(const std::vector<std::uint8_t>& stream, Rng& rng,
                  bool* decoder_error = nullptr) {
  FrameDecoder decoder;
  int decoded = 0;
  std::size_t fed = 0;
  std::vector<std::uint8_t> payload;
  while (fed < stream.size()) {
    const std::size_t chunk =
        std::min(stream.size() - fed, rng.UniformIndex(7) + 1);
    decoder.Feed(stream.data() + fed, chunk);
    fed += chunk;
    while (decoder.Next(&payload)) {
      if (DecodePayload(payload)) ++decoded;
    }
  }
  if (decoder_error != nullptr) *decoder_error = decoder.error();
  return decoded;
}

TEST(FrameFuzz, IntactFramesSurviveArbitraryChunking) {
  const std::vector<std::vector<std::uint8_t>> corpus = CorpusPayloads();
  std::vector<std::uint8_t> stream;
  for (const std::vector<std::uint8_t>& payload : corpus) {
    const std::vector<std::uint8_t> frame = EncodeFrame(payload);
    stream.insert(stream.end(), frame.begin(), frame.end());
  }
  Rng rng(20260808);
  for (int round = 0; round < 50; ++round) {
    bool error = false;
    EXPECT_EQ(DrainInChunks(stream, rng, &error),
              static_cast<int>(corpus.size()));
    EXPECT_FALSE(error);
  }
}

TEST(FrameFuzz, TruncatedPayloadsAreRejectedAtEveryCut) {
  for (const std::vector<std::uint8_t>& payload : CorpusPayloads()) {
    ASSERT_TRUE(DecodePayload(payload));
    for (std::size_t cut = 0; cut < payload.size(); ++cut) {
      const std::vector<std::uint8_t> truncated(payload.begin(),
                                                payload.begin() + cut);
      EXPECT_FALSE(DecodePayload(truncated)) << "cut at " << cut;
    }
  }
}

TEST(FrameFuzz, BitFlippedPayloadsNeverCrash) {
  Rng rng(42);
  const std::vector<std::vector<std::uint8_t>> corpus = CorpusPayloads();
  for (int round = 0; round < 2000; ++round) {
    std::vector<std::uint8_t> payload = corpus[rng.UniformIndex(corpus.size())];
    const int flips = 1 + static_cast<int>(rng.UniformIndex(4));
    for (int i = 0; i < flips; ++i) {
      const std::size_t pos = rng.UniformIndex(payload.size());
      payload[pos] ^=
          static_cast<std::uint8_t>(1u << rng.UniformIndex(8));
    }
    (void)DecodePayload(payload);  // Any verdict is fine; crashing is not.
  }
}

TEST(FrameFuzz, PureGarbageStreamsNeverCrashTheDecoder) {
  Rng rng(1337);
  for (int round = 0; round < 200; ++round) {
    std::vector<std::uint8_t> stream(rng.UniformIndex(512) + 1);
    for (std::uint8_t& b : stream) {
      b = static_cast<std::uint8_t>(rng.UniformIndex(256));
    }
    // Small length prefixes make the garbage parse as tiny frames; the
    // payload decoders must reject them all without reading out of bounds.
    (void)DrainInChunks(stream, rng);
  }
}

TEST(FrameFuzz, OversizeLengthPrefixTripsTheStickyError) {
  FrameDecoder decoder(/*max_frame_bytes=*/1024);
  WireWriter writer;
  writer.PutU32(1u << 30);  // A 1 GiB frame announcement.
  const std::vector<std::uint8_t> prefix = writer.Take();
  decoder.Feed(prefix.data(), prefix.size());
  std::vector<std::uint8_t> payload;
  EXPECT_FALSE(decoder.Next(&payload));
  EXPECT_TRUE(decoder.error());
  // Sticky: feeding more data cannot resynchronize the stream.
  const std::vector<std::uint8_t> frame = EncodeFrame({1, 2, 3});
  decoder.Feed(frame.data(), frame.size());
  EXPECT_FALSE(decoder.Next(&payload));
  EXPECT_TRUE(decoder.error());
}

TEST(FrameFuzz, TrailingBytesAfterABodyAreRejected) {
  for (std::vector<std::uint8_t> payload : CorpusPayloads()) {
    payload.push_back(0x00);  // One stray byte past a well-formed body.
    EXPECT_FALSE(DecodePayload(payload));
  }
}

}  // namespace
}  // namespace subex
