#include "core/testbed.h"

#include <gtest/gtest.h>

#include "explain/beam.h"
#include "explain/hics.h"
#include "explain/lookout.h"
#include "explain/refout.h"

namespace subex {
namespace {

TEST(TestbedProfileTest, PaperProfileMatchesSection31) {
  const TestbedProfile p = TestbedProfile::Paper();
  EXPECT_EQ(p.beam_width, 100);
  EXPECT_EQ(p.refout_pool_size, 100);
  EXPECT_EQ(p.lookout_budget, 100);
  EXPECT_EQ(p.hics_candidate_cutoff, 400);
  EXPECT_EQ(p.hics_mc_iterations, 100);
  EXPECT_EQ(p.iforest_trees, 100);
  EXPECT_EQ(p.iforest_repetitions, 10);
  EXPECT_EQ(p.max_results, 100);
  EXPECT_EQ(p.dataset_scale, 1.0);
  EXPECT_EQ(p.max_points_per_cell, 0);
}

TEST(TestbedProfileTest, QuickProfileIsSmaller) {
  const TestbedProfile q = TestbedProfile::Quick();
  EXPECT_LT(q.dataset_scale, 1.0);
  EXPECT_LE(q.beam_width, 100);
  EXPECT_LE(q.hics_mc_iterations, 100);
  EXPECT_GT(q.max_points_per_cell, 0);
}

TEST(TestbedFactoryTest, DetectorsCarryProfileKnobs) {
  const TestbedProfile q = TestbedProfile::Quick();
  const auto lof = MakeTestbedDetector(DetectorKind::kLof, q);
  EXPECT_EQ(lof->name(), "LOF");
  const auto iforest =
      MakeTestbedDetector(DetectorKind::kIsolationForest, q);
  EXPECT_EQ(iforest->name(), "iForest");
}

TEST(TestbedFactoryTest, PointExplainersCarryProfileKnobs) {
  const TestbedProfile q = TestbedProfile::Quick();
  const auto beam =
      MakeTestbedPointExplainer(PointExplainerKind::kBeam, q);
  EXPECT_EQ(beam->name(), "Beam");
  EXPECT_EQ(static_cast<const Beam*>(beam.get())->options().beam_width,
            q.beam_width);
  const auto refout =
      MakeTestbedPointExplainer(PointExplainerKind::kRefOut, q);
  EXPECT_EQ(static_cast<const RefOut*>(refout.get())->options().pool_size,
            q.refout_pool_size);
}

TEST(TestbedFactoryTest, SummarizersCarryProfileKnobs) {
  const TestbedProfile q = TestbedProfile::Quick();
  const auto lookout = MakeTestbedSummarizer(SummarizerKind::kLookOut, q);
  EXPECT_EQ(static_cast<const LookOut*>(lookout.get())->options().budget,
            q.lookout_budget);
  const auto hics = MakeTestbedSummarizer(SummarizerKind::kHics, q);
  EXPECT_EQ(
      static_cast<const Hics*>(hics.get())->options().candidate_cutoff,
      q.hics_candidate_cutoff);
}

TEST(TestbedSuiteTest, SyntheticSuiteRespectsDimensionBudget) {
  TestbedProfile q = TestbedProfile::Quick();
  q.dataset_scale = 0.2;
  q.max_dataset_dim = 23;
  const std::vector<TestbedDataset> suite = BuildSyntheticSuite(q);
  ASSERT_EQ(suite.size(), 2u);  // 14d and 23d only.
  for (const TestbedDataset& entry : suite) {
    EXPECT_TRUE(entry.subspace_outliers);
    EXPECT_LE(entry.data.dataset.num_features(), 23u);
    EXPECT_GT(entry.relevant_feature_ratio, 0.0);
    EXPECT_LT(entry.relevant_feature_ratio, 1.0);
    EXPECT_FALSE(entry.explanation_dims.empty());
    EXPECT_FALSE(entry.data.ground_truth.empty());
  }
  // Table 1: 5/14 = 36% relevant feature ratio for the 14d split.
  EXPECT_NEAR(suite[0].relevant_feature_ratio, 5.0 / 14.0, 1e-9);
}

TEST(TestbedSuiteTest, RealSuiteBuildsGroundTruth) {
  TestbedProfile q = TestbedProfile::Quick();
  q.dataset_scale = 0.2;   // Tiny for test speed.
  q.max_explanation_dim = 2;  // Ground truth search at 2d only.
  const std::vector<TestbedDataset> suite = BuildRealSuite(q);
  ASSERT_EQ(suite.size(), 3u);
  for (const TestbedDataset& entry : suite) {
    EXPECT_FALSE(entry.subspace_outliers);
    EXPECT_EQ(entry.relevant_feature_ratio, 1.0);
    EXPECT_FALSE(entry.data.ground_truth.empty());
    // Every outlier explained at dim 2.
    for (int p : entry.data.dataset.outlier_indices()) {
      ASSERT_EQ(entry.data.ground_truth.RelevantFor(p).size(), 1u);
      EXPECT_EQ(entry.data.ground_truth.RelevantFor(p).front().size(), 2u);
    }
  }
}

TEST(TestbedNamesTest, KindNames) {
  EXPECT_STREQ(PointExplainerKindName(PointExplainerKind::kBeam), "Beam");
  EXPECT_STREQ(PointExplainerKindName(PointExplainerKind::kRefOut),
               "RefOut");
  EXPECT_STREQ(SummarizerKindName(SummarizerKind::kLookOut), "LookOut");
  EXPECT_STREQ(SummarizerKindName(SummarizerKind::kHics), "HiCS");
}

}  // namespace
}  // namespace subex
