#include "online/online_dataset.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/rng.h"
#include "detect/knn_distance.h"
#include "detect/loda.h"
#include "detect/lof.h"
#include "online/drift_monitor.h"
#include "online/windowed_scorer.h"
#include "stream/drifting_stream.h"

namespace subex {
namespace {

DriftingStreamConfig SmallStream(std::uint64_t seed = 19) {
  DriftingStreamConfig config;
  config.chunk_size = 64;
  config.outliers_per_chunk = 3;
  config.drift_every_chunks = 4;
  config.subspace_dims = {2, 3};  // 5 features.
  config.seed = seed;
  return config;
}

/// Pulls `n` stream rows as one Matrix.
Matrix StreamRows(DriftingStreamGenerator& stream, std::size_t n) {
  Matrix rows(n, static_cast<std::size_t>(stream.num_features()));
  std::size_t filled = 0;
  while (filled < n) {
    const StreamChunk chunk = stream.Next();
    for (std::size_t r = 0; r < chunk.points.rows() && filled < n; ++r) {
      for (std::size_t f = 0; f < rows.cols(); ++f) {
        rows(filled, f) = chunk.points(r, f);
      }
      ++filled;
    }
  }
  return rows;
}

Matrix SliceRows(const Matrix& all, std::size_t begin, std::size_t count) {
  Matrix out(count, all.cols());
  for (std::size_t r = 0; r < count; ++r) {
    for (std::size_t f = 0; f < all.cols(); ++f) {
      out(r, f) = all(begin + r, f);
    }
  }
  return out;
}

TEST(OnlineDatasetTest, IngestAdvancesEpochAtStride) {
  OnlineDatasetOptions options;
  options.window_capacity = 16;
  options.advance_every = 4;
  options.min_score_window = 4;
  OnlineDataset dataset(options, 2);

  const OnlineDataset::IngestResult r1 =
      dataset.Append(Matrix{{1.0, 2.0}, {3.0, 4.0}, {5.0, 6.0}});
  EXPECT_EQ(r1.accepted, 3u);
  EXPECT_EQ(r1.epoch, 0u);  // Below the stride: rows wait in pending.
  EXPECT_EQ(r1.window_size, 0u);
  EXPECT_EQ(r1.advances, 0u);

  const OnlineDataset::IngestResult r2 = dataset.AppendRow(
      std::vector<double>{7.0, 8.0});
  EXPECT_EQ(r2.epoch, 1u);
  EXPECT_EQ(r2.window_size, 4u);
  EXPECT_EQ(r2.advances, 1u);
  EXPECT_EQ(r2.total_ingested, 4u);

  const OnlineDataset::StatsSnapshot stats = dataset.stats();
  EXPECT_EQ(stats.pending, 0u);
  EXPECT_EQ(stats.advances, 1u);
}

TEST(OnlineDatasetTest, EmptyWindowHasNoSnapshotAndRefusesScoring) {
  OnlineDatasetOptions options;
  options.window_capacity = 8;
  options.advance_every = 4;
  options.min_score_window = 4;
  OnlineDataset dataset(options, 2);
  dataset.AddLoda("LODA", Loda::Options{});

  const OnlineDataset::EpochSnapshot snapshot = dataset.Snapshot();
  EXPECT_EQ(snapshot.data, nullptr);
  EXPECT_EQ(snapshot.epoch, 0u);

  OnlineDataset::ScoredEpoch scored;
  EXPECT_EQ(dataset.Score("LODA", Subspace(), &scored),
            OnlineDataset::Status::kWindowTooSmall);
  EXPECT_EQ(dataset.Score("nope", Subspace(), &scored),
            OnlineDataset::Status::kWindowTooSmall);  // Size checked first.
}

TEST(OnlineDatasetTest, UnknownDetectorReported) {
  OnlineDatasetOptions options;
  options.window_capacity = 8;
  options.advance_every = 4;
  options.min_score_window = 4;
  OnlineDataset dataset(options, 2);
  dataset.Append(Matrix{{1.0, 2.0}, {2.0, 1.0}, {0.5, 0.5}, {3.0, 3.0}});
  OnlineDataset::ScoredEpoch scored;
  EXPECT_EQ(dataset.Score("nope", Subspace(), &scored),
            OnlineDataset::Status::kUnknownDetector);
}

TEST(OnlineDatasetTest, SingleAppendLargerThanCapacityKeepsNewest) {
  OnlineDatasetOptions options;
  options.window_capacity = 16;
  options.advance_every = 16;
  options.min_score_window = 4;
  OnlineDataset dataset(options, 1);

  Matrix rows(100, 1);
  for (std::size_t r = 0; r < 100; ++r) rows(r, 0) = static_cast<double>(r);
  const OnlineDataset::IngestResult result = dataset.Append(rows);
  EXPECT_EQ(result.accepted, 100u);
  EXPECT_EQ(result.advances, 6u);  // floor(100 / 16), 4 rows stay pending.
  EXPECT_EQ(result.epoch, 6u);
  EXPECT_EQ(result.window_size, 16u);

  // The window holds ingested rows 80..95 (rows 96..99 are pending).
  const OnlineDataset::EpochSnapshot snapshot = dataset.Snapshot();
  ASSERT_NE(snapshot.data, nullptr);
  ASSERT_EQ(snapshot.data->num_points(), 16u);
  for (std::size_t p = 0; p < 16; ++p) {
    EXPECT_EQ(snapshot.data->Value(p, 0), static_cast<double>(80 + p));
  }
  EXPECT_EQ(dataset.stats().pending, 4u);
}

/// The tentpole parity contract: per window epoch, the incrementally
/// maintained LODA must be bitwise the batch detector recomputed from
/// scratch on a snapshot of the same window contents — through growth,
/// saturation (evictions shrinking histogram ranges) and drift.
TEST(OnlineDatasetTest, IncrementalLodaBitwiseMatchesBatchRecompute) {
  OnlineDatasetOptions options;
  options.window_capacity = 48;
  options.advance_every = 8;
  options.min_score_window = 8;
  options.drift.min_window = 16;
  Loda::Options loda_options;
  loda_options.num_projections = 24;
  loda_options.seed = 7;
  OnlineDataset dataset(options, 5);
  dataset.AddLoda("LODA", loda_options);
  const Loda batch(loda_options);

  DriftingStreamGenerator stream(SmallStream());
  const Matrix all = StreamRows(stream, 24 * options.advance_every);
  const std::vector<Subspace> subspaces = {Subspace(), Subspace({0, 1}),
                                           Subspace({1, 3, 4})};

  int epochs_checked = 0;
  for (std::size_t begin = 0; begin < all.rows();
       begin += options.advance_every) {
    dataset.Append(SliceRows(all, begin, options.advance_every));
    const OnlineDataset::EpochSnapshot snapshot = dataset.Snapshot();
    ASSERT_NE(snapshot.data, nullptr);
    if (snapshot.data->num_points() < options.min_score_window) continue;
    for (const Subspace& subspace : subspaces) {
      OnlineDataset::ScoredEpoch scored;
      ASSERT_EQ(dataset.Score("LODA", subspace, &scored),
                OnlineDataset::Status::kOk);
      EXPECT_EQ(scored.epoch, snapshot.epoch);
      const std::vector<double> expected =
          ScoreStandardized(batch, *snapshot.data, subspace);
      EXPECT_EQ(*scored.scores, expected)
          << "epoch " << snapshot.epoch << " subspace "
          << subspace.ToString();
    }
    ++epochs_checked;
  }
  // Epochs both before and after window saturation were exercised.
  EXPECT_GE(epochs_checked, 20);
}

TEST(OnlineDatasetTest, IncrementalLodaFastPathDominatesInSteadyState) {
  OnlineDatasetOptions options;
  options.window_capacity = 64;
  options.advance_every = 4;
  options.min_score_window = 8;
  Loda::Options loda_options;
  loda_options.num_projections = 16;
  auto scorer = std::make_unique<IncrementalLodaScorer>(loda_options);
  IncrementalLodaScorer* loda = scorer.get();
  OnlineDataset dataset(options, 5);
  dataset.AddScorer("LODA", std::move(scorer));

  DriftingStreamGenerator stream(SmallStream(5));
  const Matrix all = StreamRows(stream, 60 * options.advance_every);
  std::uint64_t rebuilds_at_steady_state = 0;
  std::uint64_t advances_counted = 0;
  for (std::size_t begin = 0; begin < all.rows();
       begin += options.advance_every) {
    dataset.Append(SliceRows(all, begin, options.advance_every));
    if (dataset.stats().window_size < options.min_score_window) continue;
    OnlineDataset::ScoredEpoch scored;
    ASSERT_EQ(dataset.Score("LODA", Subspace(), &scored),
              OnlineDataset::Status::kOk);
    if (begin == 40 * options.advance_every) {
      rebuilds_at_steady_state = loda->rebuilds();
    }
    if (begin > 40 * options.advance_every) ++advances_counted;
  }
  // Once saturated with stable structure, most advances must take the
  // histogram add/subtract path: far fewer than one full rebuild (all
  // projectors) per advance.
  const std::uint64_t late_rebuilds =
      loda->rebuilds() - rebuilds_at_steady_state;
  EXPECT_LT(late_rebuilds, advances_counted *
                               static_cast<std::uint64_t>(
                                   loda_options.num_projections) / 2);
}

TEST(OnlineDatasetTest, ReindexScorersBitwiseMatchBatchRecompute) {
  OnlineDatasetOptions options;
  options.window_capacity = 40;
  options.advance_every = 10;
  options.min_score_window = 10;
  OnlineDataset dataset(options, 5);
  const KnnDistance knn(5);
  const Lof lof(5);
  dataset.AddReindexDetector("kNN", knn);
  dataset.AddReindexDetector("LOF", lof);

  DriftingStreamGenerator stream(SmallStream(3));
  const Matrix all = StreamRows(stream, 8 * options.advance_every);
  const Subspace subspace({0, 2});
  for (std::size_t begin = 0; begin < all.rows();
       begin += options.advance_every) {
    dataset.Append(SliceRows(all, begin, options.advance_every));
    const OnlineDataset::EpochSnapshot snapshot = dataset.Snapshot();
    ASSERT_NE(snapshot.data, nullptr);
    OnlineDataset::ScoredEpoch scored;
    ASSERT_EQ(dataset.Score("kNN", subspace, &scored),
              OnlineDataset::Status::kOk);
    EXPECT_EQ(*scored.scores, ScoreStandardized(knn, *snapshot.data, subspace));
    ASSERT_EQ(dataset.Score("LOF", subspace, &scored),
              OnlineDataset::Status::kOk);
    EXPECT_EQ(*scored.scores, ScoreStandardized(lof, *snapshot.data, subspace));
  }
}

TEST(OnlineDatasetTest, AdvanceInvalidatesExactlyTheStaleEpochEntries) {
  OnlineDatasetOptions options;
  options.window_capacity = 32;
  options.advance_every = 8;
  options.min_score_window = 8;
  options.drift.min_window = 8;
  OnlineDataset dataset(options, 5);
  dataset.AddLoda("LODA", Loda::Options{.num_projections = 8});

  DriftingStreamGenerator stream(SmallStream(9));
  const Matrix all = StreamRows(stream, 3 * options.advance_every);
  dataset.Append(SliceRows(all, 0, options.advance_every));

  // Warm the epoch-1 cache with several subspaces (the drift pass already
  // cached the full space).
  const std::vector<Subspace> subspaces = {Subspace({0, 1}), Subspace({2, 3}),
                                           Subspace({1, 4})};
  OnlineDataset::ScoredEpoch scored;
  for (const Subspace& s : subspaces) {
    ASSERT_EQ(dataset.Score("LODA", s, &scored), OnlineDataset::Status::kOk);
  }
  const OnlineDataset::StatsSnapshot before = dataset.stats();
  EXPECT_EQ(before.cache_entries, subspaces.size() + 1);
  EXPECT_GT(before.cache_bytes, 0u);

  // A cache hit serves the same vector object, not a recompute.
  ASSERT_EQ(dataset.Score("LODA", subspaces[0], &scored),
            OnlineDataset::Status::kOk);
  const ScoreVectorPtr first = scored.scores;
  ASSERT_EQ(dataset.Score("LODA", subspaces[0], &scored),
            OnlineDataset::Status::kOk);
  EXPECT_EQ(scored.scores.get(), first.get());

  // The advance drops every epoch-1 entry; only the new epoch's drift
  // warm-up entry remains.
  dataset.Append(SliceRows(all, options.advance_every, options.advance_every));
  const OnlineDataset::StatsSnapshot after = dataset.stats();
  EXPECT_EQ(after.epochs_invalidated,
            before.epochs_invalidated + subspaces.size() + 1);
  EXPECT_EQ(after.cache_entries, 1u);
  EXPECT_EQ(after.epoch, before.epoch + 1);
}

TEST(OnlineDatasetTest, StaleSnapshotScoresStayEpochConsistent) {
  OnlineDatasetOptions options;
  options.window_capacity = 32;
  options.advance_every = 8;
  options.min_score_window = 8;
  Loda::Options loda_options;
  loda_options.num_projections = 16;
  OnlineDataset dataset(options, 5);
  dataset.AddLoda("LODA", loda_options);
  const Loda batch(loda_options);

  DriftingStreamGenerator stream(SmallStream(13));
  const Matrix all = StreamRows(stream, 4 * options.advance_every);
  dataset.Append(SliceRows(all, 0, 2 * options.advance_every));

  const OnlineDataset::EpochSnapshot pinned = dataset.Snapshot();
  ASSERT_NE(pinned.data, nullptr);
  const Subspace subspace({0, 1});
  const std::vector<double> expected =
      ScoreStandardized(batch, *pinned.data, subspace);

  // Live path (epoch matches).
  OnlineDataset::ScoredEpoch scored;
  ASSERT_EQ(dataset.ScoreAt(pinned, "LODA", subspace, &scored),
            OnlineDataset::Status::kOk);
  EXPECT_EQ(scored.epoch, pinned.epoch);
  EXPECT_EQ(*scored.scores, expected);

  // The window moves on; the pinned snapshot must keep serving the exact
  // epoch-consistent bits via the batch fallback.
  dataset.Append(
      SliceRows(all, 2 * options.advance_every, 2 * options.advance_every));
  ASSERT_GT(dataset.epoch(), pinned.epoch);
  ASSERT_EQ(dataset.ScoreAt(pinned, "LODA", subspace, &scored),
            OnlineDataset::Status::kOk);
  EXPECT_EQ(scored.epoch, pinned.epoch);
  EXPECT_EQ(*scored.scores, expected);

  // PinnedEpochDetector is the same path behind the Detector interface,
  // already standardized.
  const PinnedEpochDetector detector(dataset, pinned, "LODA");
  EXPECT_TRUE(detector.ReturnsStandardizedScores());
  EXPECT_EQ(detector.Score(*pinned.data, subspace), expected);
  EXPECT_EQ(ScoreStandardized(detector, *pinned.data, subspace), expected);

  EXPECT_EQ(dataset.stats().stale_serves, 0u);
  dataset.NoteStaleServe(pinned.epoch, dataset.epoch());
  EXPECT_EQ(dataset.stats().stale_serves, 1u);
}

TEST(DriftMonitorTest, FlagsDistributionShiftOnly) {
  DriftMonitorOptions options;
  options.min_window = 32;
  DriftMonitor monitor(options);
  Rng rng(71);
  const auto sample = [&rng](double shift) {
    std::vector<double> scores(128);
    for (double& s : scores) s = rng.Gaussian() + shift;
    return scores;
  };

  // First epoch: nothing to compare with.
  EXPECT_FALSE(monitor.Observe(1, sample(0.0)).tested);

  const DriftMonitor::Result stable = monitor.Observe(2, sample(0.0));
  EXPECT_TRUE(stable.tested);
  EXPECT_FALSE(stable.drifted);
  EXPECT_EQ(monitor.drift_count(), 0u);

  const DriftMonitor::Result shifted = monitor.Observe(3, sample(5.0));
  EXPECT_TRUE(shifted.tested);
  EXPECT_TRUE(shifted.drifted);
  EXPECT_GT(shifted.ks_statistic, options.ks_threshold);
  EXPECT_LE(shifted.p_value, options.max_p_value);
  EXPECT_EQ(monitor.drift_count(), 1u);
  EXPECT_EQ(monitor.last_statistic(), shifted.ks_statistic);
}

TEST(DriftMonitorTest, SmallWindowsAreNotTested) {
  DriftMonitorOptions options;
  options.min_window = 32;
  DriftMonitor monitor(options);
  EXPECT_FALSE(monitor.Observe(1, std::vector<double>(8, 1.0)).tested);
  EXPECT_FALSE(monitor.Observe(2, std::vector<double>(8, 2.0)).tested);
}

TEST(OnlineDatasetTest, MeanShiftRaisesDriftEvent) {
  OnlineDatasetOptions options;
  options.window_capacity = 64;
  options.advance_every = 32;
  options.min_score_window = 32;
  options.drift.min_window = 32;
  OnlineDataset dataset(options, 3);
  dataset.AddLoda("LODA", Loda::Options{.num_projections = 16});

  Rng rng(29);
  const auto batch_of = [&rng](std::size_t n, double shift) {
    Matrix rows(n, 3);
    for (std::size_t r = 0; r < n; ++r) {
      for (std::size_t f = 0; f < 3; ++f) rows(r, f) = rng.Gaussian() + shift;
    }
    return rows;
  };
  for (int i = 0; i < 4; ++i) dataset.Append(batch_of(32, 0.0));
  const OnlineDataset::StatsSnapshot before = dataset.stats();
  EXPECT_EQ(before.drift_events, 0u);
  EXPECT_TRUE(before.drift_tested);

  // An abrupt mean shift slides through the window across the next
  // advances; the score distribution jumps and the monitor must fire.
  for (int i = 0; i < 4; ++i) dataset.Append(batch_of(32, 25.0));
  EXPECT_GE(dataset.stats().drift_events, 1u);
  EXPECT_GT(dataset.stats().drift_score, 0.0);
}

}  // namespace
}  // namespace subex
