#include "data/dataset.h"

#include <gtest/gtest.h>

#include <vector>

namespace subex {
namespace {

Dataset MakeSmall() {
  Matrix m = {{0.5, 9.0}, {0.1, 7.0}, {0.9, 8.0}, {0.3, 6.0}};
  return Dataset(std::move(m), {2});
}

TEST(DatasetTest, Shape) {
  const Dataset d = MakeSmall();
  EXPECT_EQ(d.num_points(), 4u);
  EXPECT_EQ(d.num_features(), 2u);
  EXPECT_EQ(d.Value(2, 1), 8.0);
}

TEST(DatasetTest, OutlierIndicesSortedDeduped) {
  Matrix m = {{0.0}, {1.0}, {2.0}};
  Dataset d(std::move(m), {2, 0, 2});
  EXPECT_EQ(d.outlier_indices(), (std::vector<int>{0, 2}));
  EXPECT_TRUE(d.IsOutlier(0));
  EXPECT_FALSE(d.IsOutlier(1));
  EXPECT_TRUE(d.IsOutlier(2));
}

TEST(DatasetTest, ContaminationRatio) {
  const Dataset d = MakeSmall();
  EXPECT_DOUBLE_EQ(d.ContaminationRatio(), 0.25);
}

TEST(DatasetTest, SetOutlierIndicesReplaces) {
  Dataset d = MakeSmall();
  d.SetOutlierIndices({1, 3});
  EXPECT_EQ(d.outlier_indices(), (std::vector<int>{1, 3}));
  EXPECT_FALSE(d.IsOutlier(2));
}

TEST(DatasetTest, SortedIndexByFeature) {
  const Dataset d = MakeSmall();
  EXPECT_EQ(d.SortedIndexByFeature(0), (std::vector<int>{1, 3, 0, 2}));
  EXPECT_EQ(d.SortedIndexByFeature(1), (std::vector<int>{3, 1, 2, 0}));
}

TEST(DatasetTest, SortedIndexIsCachedReference) {
  const Dataset d = MakeSmall();
  const std::vector<int>* first = &d.SortedIndexByFeature(0);
  const std::vector<int>* second = &d.SortedIndexByFeature(0);
  EXPECT_EQ(first, second);
}

TEST(DatasetTest, FullSpaceSubspace) {
  const Dataset d = MakeSmall();
  EXPECT_EQ(d.FullSpace(), Subspace({0, 1}));
}

TEST(DatasetTest, NormalizeMinMaxMapsToUnitInterval) {
  Dataset d = MakeSmall();
  d.NormalizeMinMax();
  EXPECT_DOUBLE_EQ(d.Value(1, 0), 0.0);  // min of feature 0 (0.1).
  EXPECT_DOUBLE_EQ(d.Value(2, 0), 1.0);  // max of feature 0 (0.9).
  EXPECT_DOUBLE_EQ(d.Value(3, 1), 0.0);  // min of feature 1 (6.0).
  EXPECT_DOUBLE_EQ(d.Value(0, 1), 1.0);  // max of feature 1 (9.0).
}

TEST(DatasetTest, NormalizeMinMaxConstantFeature) {
  Matrix m = {{5.0}, {5.0}, {5.0}};
  Dataset d(std::move(m));
  d.NormalizeMinMax();
  for (std::size_t p = 0; p < 3; ++p) EXPECT_EQ(d.Value(p, 0), 0.0);
}

TEST(DatasetTest, NormalizeInvalidatesSortCache) {
  Dataset d = MakeSmall();
  (void)d.SortedIndexByFeature(0);
  d.NormalizeMinMax();
  // Order is unchanged by the affine map, but the cache must be rebuilt
  // without crashing and still be correct.
  EXPECT_EQ(d.SortedIndexByFeature(0), (std::vector<int>{1, 3, 0, 2}));
}

TEST(DatasetTest, CopySharesNothingObservable) {
  Dataset d = MakeSmall();
  Dataset copy = d;
  copy.SetOutlierIndices({0});
  EXPECT_TRUE(d.IsOutlier(2));
  EXPECT_FALSE(d.IsOutlier(0));
}

}  // namespace
}  // namespace subex
