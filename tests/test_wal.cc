// The WAL/checkpoint layer and the crash-recovery contract: record round
// trips, torn-tail tolerance, CRC detection, atomic checkpoints, and the
// golden restart property — a recovered OnlineDataset is bitwise
// indistinguishable from one that never crashed.

#include "online/wal.h"

#include <gtest/gtest.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "common/matrix.h"
#include "detect/loda.h"
#include "fault/fault.h"
#include "online/online_dataset.h"

namespace subex {
namespace {

std::string TempDir(const std::string& tag) {
  const std::string dir = ::testing::TempDir() + "subex_wal_" + tag + "_" +
                          std::to_string(::getpid());
  ::mkdir(dir.c_str(), 0755);
  return dir;
}

std::vector<std::uint8_t> Bytes(const std::string& s) {
  return std::vector<std::uint8_t>(s.begin(), s.end());
}

TEST(Wal, AppendAndReadRoundTrip) {
  const std::string path = TempDir("roundtrip") + "/a.wal";
  ::unlink(path.c_str());
  WalWriter writer;
  std::string error;
  ASSERT_TRUE(writer.Open(path, &error)) << error;
  const std::vector<std::uint8_t> p1 = Bytes("hello");
  const std::vector<std::uint8_t> p2 = Bytes("");
  const std::vector<std::uint8_t> p3(1000, 0xab);
  ASSERT_TRUE(writer.Append(1, p1.data(), p1.size(), &error)) << error;
  ASSERT_TRUE(writer.Append(2, p2.data(), p2.size(), &error)) << error;
  ASSERT_TRUE(writer.Append(7, p3.data(), p3.size(), &error)) << error;
  EXPECT_EQ(writer.records(), 3u);
  ASSERT_TRUE(writer.Sync(&error)) << error;
  writer.Close();

  const WalReadResult read = ReadWal(path);
  ASSERT_TRUE(read.ok()) << read.error;
  EXPECT_FALSE(read.truncated_tail);
  ASSERT_EQ(read.records.size(), 3u);
  EXPECT_EQ(read.records[0].type, 1);
  EXPECT_EQ(read.records[0].payload, p1);
  EXPECT_EQ(read.records[1].type, 2);
  EXPECT_TRUE(read.records[1].payload.empty());
  EXPECT_EQ(read.records[2].type, 7);
  EXPECT_EQ(read.records[2].payload, p3);
}

TEST(Wal, AbsentFileReadsAsEmpty) {
  const WalReadResult read = ReadWal(TempDir("absent") + "/nope.wal");
  EXPECT_TRUE(read.ok()) << read.error;
  EXPECT_TRUE(read.records.empty());
  EXPECT_FALSE(read.truncated_tail);
}

TEST(Wal, TornTailIsDroppedCleanly) {
  const std::string path = TempDir("torn") + "/a.wal";
  ::unlink(path.c_str());
  WalWriter writer;
  std::string error;
  ASSERT_TRUE(writer.Open(path, &error)) << error;
  const std::vector<std::uint8_t> p = Bytes("durable");
  ASSERT_TRUE(writer.Append(1, p.data(), p.size(), &error));
  ASSERT_TRUE(writer.Append(1, p.data(), p.size(), &error));
  writer.Close();

  // Tear the final record at every possible byte boundary: the reader must
  // always keep record 1 and drop the torn tail without erroring.
  struct stat st;
  ASSERT_EQ(::stat(path.c_str(), &st), 0);
  const std::size_t full = static_cast<std::size_t>(st.st_size);
  const std::size_t record = full / 2;
  for (std::size_t cut = record + 1; cut < full; ++cut) {
    ASSERT_EQ(::truncate(path.c_str(), static_cast<off_t>(cut)), 0);
    const WalReadResult read = ReadWal(path);
    ASSERT_TRUE(read.ok()) << read.error;
    EXPECT_TRUE(read.truncated_tail) << "cut at " << cut;
    ASSERT_EQ(read.records.size(), 1u) << "cut at " << cut;
    EXPECT_EQ(read.records[0].payload, p);
  }
}

TEST(Wal, CorruptRecordStopsReplayAtLastGoodRecord) {
  const std::string path = TempDir("corrupt") + "/a.wal";
  ::unlink(path.c_str());
  WalWriter writer;
  std::string error;
  const std::vector<std::uint8_t> p = Bytes("payload");
  ASSERT_TRUE(writer.Open(path, &error)) << error;
  ASSERT_TRUE(writer.Append(1, p.data(), p.size(), &error));
  ASSERT_TRUE(writer.Append(1, p.data(), p.size(), &error));
  writer.Close();

  // Flip one payload byte of the second record.
  struct stat st;
  ASSERT_EQ(::stat(path.c_str(), &st), 0);
  std::fstream file(path, std::ios::in | std::ios::out | std::ios::binary);
  file.seekp(st.st_size - 1);
  file.put(static_cast<char>('x'));
  file.close();

  const WalReadResult read = ReadWal(path);
  ASSERT_TRUE(read.ok()) << read.error;
  EXPECT_TRUE(read.truncated_tail);
  ASSERT_EQ(read.records.size(), 1u);
}

TEST(Wal, TruncateEmptiesTheLog) {
  const std::string path = TempDir("trunc") + "/a.wal";
  ::unlink(path.c_str());
  WalWriter writer;
  std::string error;
  const std::vector<std::uint8_t> p = Bytes("x");
  ASSERT_TRUE(writer.Open(path, &error));
  ASSERT_TRUE(writer.Append(1, p.data(), p.size(), &error));
  EXPECT_GT(writer.bytes(), 0u);
  ASSERT_TRUE(writer.Truncate(&error)) << error;
  EXPECT_EQ(writer.bytes(), 0u);
  ASSERT_TRUE(writer.Append(2, p.data(), p.size(), &error));
  writer.Close();
  const WalReadResult read = ReadWal(path);
  ASSERT_EQ(read.records.size(), 1u);
  EXPECT_EQ(read.records[0].type, 2);
}

TEST(Wal, AppendFaultInjection) {
  FaultControl control;
  control.Arm(FaultPoint::kWalAppend, FaultRule{});
  const std::string path = TempDir("fault") + "/a.wal";
  ::unlink(path.c_str());
  WalWriter writer;
  std::string error;
  ASSERT_TRUE(writer.Open(path, &error));
  const std::vector<std::uint8_t> p = Bytes("x");
  EXPECT_FALSE(writer.Append(1, p.data(), p.size(), &error));
  EXPECT_NE(error.find("injected"), std::string::npos) << error;
  EXPECT_EQ(writer.bytes(), 0u);
}

TEST(Checkpoint, RoundTripAndAtomicReplace) {
  const std::string path = TempDir("ckpt") + "/c.ckpt";
  ::unlink(path.c_str());
  std::string error;
  const std::vector<std::uint8_t> v1 = Bytes("state one");
  ASSERT_TRUE(WriteCheckpointFile(path, v1, &error)) << error;
  CheckpointReadResult read = ReadCheckpointFile(path);
  ASSERT_TRUE(read.ok()) << read.error;
  ASSERT_TRUE(read.exists);
  EXPECT_EQ(read.payload, v1);

  const std::vector<std::uint8_t> v2 = Bytes("state two, longer than one");
  ASSERT_TRUE(WriteCheckpointFile(path, v2, &error)) << error;
  read = ReadCheckpointFile(path);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read.payload, v2);
}

TEST(Checkpoint, AbsentFileIsOkCorruptFileIsError) {
  const std::string dir = TempDir("ckpt2");
  CheckpointReadResult read = ReadCheckpointFile(dir + "/nope.ckpt");
  EXPECT_TRUE(read.ok());
  EXPECT_FALSE(read.exists);

  const std::string path = dir + "/bad.ckpt";
  std::ofstream(path, std::ios::binary) << "not a checkpoint at all";
  read = ReadCheckpointFile(path);
  EXPECT_TRUE(read.exists);
  EXPECT_FALSE(read.ok());

  // Valid envelope, corrupted payload byte: CRC must catch it.
  std::string error;
  ASSERT_TRUE(WriteCheckpointFile(path, Bytes("good payload"), &error));
  struct stat st;
  ASSERT_EQ(::stat(path.c_str(), &st), 0);
  std::fstream file(path, std::ios::in | std::ios::out | std::ios::binary);
  file.seekp(st.st_size - 1);
  file.put('!');
  file.close();
  read = ReadCheckpointFile(path);
  EXPECT_TRUE(read.exists);
  EXPECT_FALSE(read.ok());
  EXPECT_NE(read.error.find("CRC"), std::string::npos) << read.error;
}

TEST(Checkpoint, SyncFaultLeavesOldCheckpointIntact) {
  FaultControl control;
  const std::string path = TempDir("ckpt3") + "/c.ckpt";
  ::unlink(path.c_str());
  std::string error;
  const std::vector<std::uint8_t> v1 = Bytes("old");
  ASSERT_TRUE(WriteCheckpointFile(path, v1, &error));
  control.Arm(FaultPoint::kWalSync, FaultRule{});
  EXPECT_FALSE(WriteCheckpointFile(path, Bytes("new"), &error));
  EXPECT_NE(error.find("injected"), std::string::npos) << error;
  control.Disarm(FaultPoint::kWalSync);
  const CheckpointReadResult read = ReadCheckpointFile(path);
  ASSERT_TRUE(read.ok()) << read.error;
  EXPECT_EQ(read.payload, v1);  // The failed write never replaced it.
}

// --- The golden restart contract -----------------------------------------

OnlineDatasetOptions RecoveryOptions(const std::string& wal_dir) {
  OnlineDatasetOptions options;
  options.name = "golden";
  options.window_capacity = 48;
  options.advance_every = 8;
  options.min_score_window = 16;
  options.wal_dir = wal_dir;
  options.wal_checkpoint_every = 3;
  return options;
}

Matrix StreamRows(std::uint64_t from, std::uint64_t count,
                  std::size_t num_features) {
  Matrix m(count, num_features);
  for (std::uint64_t r = 0; r < count; ++r) {
    for (std::size_t f = 0; f < num_features; ++f) {
      // Deterministic, feature-dependent, irrational enough to make every
      // value distinct at the bit level.
      m(r, f) = std::sin(0.37 * static_cast<double>(from + r) +
                         1.13 * static_cast<double>(f));
    }
  }
  return m;
}

void AddGoldenScorer(OnlineDataset& dataset) {
  Loda::Options loda;
  loda.num_projections = 6;
  dataset.AddLoda("LODA", loda);
}

/// Ingests rows [0, n) in ragged batches (deliberately misaligned with the
/// stride) so checkpoints land mid-batch with rows pending.
void IngestUpTo(OnlineDataset& dataset, std::uint64_t n,
                std::size_t num_features) {
  const std::uint64_t from = dataset.stats().total_ingested;
  std::uint64_t r = from;
  while (r < n) {
    const std::uint64_t batch = std::min<std::uint64_t>(5, n - r);
    dataset.Append(StreamRows(r, batch, num_features));
    r += batch;
  }
}

TEST(WalRecovery, RestartMatchesUninterruptedRunBitwise) {
  constexpr std::size_t kFeatures = 3;
  constexpr std::uint64_t kTotal = 150;
  constexpr std::uint64_t kCrashAt = 97;
  const std::string dir = TempDir("golden");
  ::unlink((dir + "/golden.wal").c_str());
  ::unlink((dir + "/golden.ckpt").c_str());

  // Process A: ingests 97 rows and "crashes" (destroyed mid-stream, its
  // WAL and checkpoint left on disk exactly as written).
  {
    OnlineDataset crashed(RecoveryOptions(dir), kFeatures);
    AddGoldenScorer(crashed);
    ASSERT_TRUE(crashed.RecoverFromWal().ok());
    IngestUpTo(crashed, kCrashAt, kFeatures);
  }

  // Process B: recovers from disk, then finishes the stream.
  OnlineDataset recovered(RecoveryOptions(dir), kFeatures);
  AddGoldenScorer(recovered);
  const OnlineDataset::RecoveryResult recovery = recovered.RecoverFromWal();
  ASSERT_TRUE(recovery.ok()) << recovery.error;
  EXPECT_TRUE(recovery.recovered);
  EXPECT_EQ(recovered.stats().total_ingested, kCrashAt);
  IngestUpTo(recovered, kTotal, kFeatures);

  // Process C: the control — never crashed, no WAL.
  OnlineDataset reference(RecoveryOptions(""), kFeatures);
  AddGoldenScorer(reference);
  IngestUpTo(reference, kTotal, kFeatures);

  const OnlineDataset::StatsSnapshot got = recovered.stats();
  const OnlineDataset::StatsSnapshot want = reference.stats();
  EXPECT_EQ(got.epoch, want.epoch);
  EXPECT_EQ(got.advances, want.advances);
  EXPECT_EQ(got.window_size, want.window_size);
  EXPECT_EQ(got.pending, want.pending);
  EXPECT_EQ(got.total_ingested, want.total_ingested);

  // The paper-grade assertion: per-point window scores, bitwise.
  OnlineDataset::ScoredEpoch got_scores, want_scores;
  ASSERT_EQ(recovered.Score("LODA", Subspace(), &got_scores),
            OnlineDataset::Status::kOk);
  ASSERT_EQ(reference.Score("LODA", Subspace(), &want_scores),
            OnlineDataset::Status::kOk);
  ASSERT_EQ(got_scores.scores->size(), want_scores.scores->size());
  for (std::size_t i = 0; i < got_scores.scores->size(); ++i) {
    std::uint64_t got_bits, want_bits;
    std::memcpy(&got_bits, &(*got_scores.scores)[i], 8);
    std::memcpy(&want_bits, &(*want_scores.scores)[i], 8);
    EXPECT_EQ(got_bits, want_bits) << "score " << i << " differs";
  }
}

TEST(WalRecovery, FlushIsJournaledToo) {
  constexpr std::size_t kFeatures = 2;
  const std::string dir = TempDir("flush");
  ::unlink((dir + "/golden.wal").c_str());
  ::unlink((dir + "/golden.ckpt").c_str());

  {
    OnlineDataset crashed(RecoveryOptions(dir), kFeatures);
    AddGoldenScorer(crashed);
    ASSERT_TRUE(crashed.RecoverFromWal().ok());
    // 21 rows = 2 advances + 5 pending, then a forced flush advance.
    IngestUpTo(crashed, 21, kFeatures);
    crashed.Flush();
    ASSERT_EQ(crashed.stats().pending, 0u);
  }

  OnlineDataset recovered(RecoveryOptions(dir), kFeatures);
  AddGoldenScorer(recovered);
  ASSERT_TRUE(recovered.RecoverFromWal().ok());
  EXPECT_EQ(recovered.stats().pending, 0u);
  EXPECT_EQ(recovered.stats().epoch, 3u);  // 2 stride + 1 flush advance.
  EXPECT_EQ(recovered.stats().total_ingested, 21u);
}

TEST(WalRecovery, DegradesButKeepsServingWhenAppendsFail) {
  FaultControl control;
  constexpr std::size_t kFeatures = 2;
  const std::string dir = TempDir("degrade");
  ::unlink((dir + "/golden.wal").c_str());
  ::unlink((dir + "/golden.ckpt").c_str());

  OnlineDataset dataset(RecoveryOptions(dir), kFeatures);
  AddGoldenScorer(dataset);
  ASSERT_TRUE(dataset.RecoverFromWal().ok());
  control.Arm(FaultPoint::kWalAppend, FaultRule{});
  IngestUpTo(dataset, 40, kFeatures);  // Every WAL append fails.
  const OnlineDataset::StatsSnapshot stats = dataset.stats();
  EXPECT_TRUE(stats.wal_degraded);
  EXPECT_EQ(stats.total_ingested, 40u);  // Ingest itself never failed.
  EXPECT_GT(stats.epoch, 0u);
}

TEST(WalRecovery, FreshDirectoryIsANoOp) {
  const std::string dir = TempDir("fresh");
  ::unlink((dir + "/golden.wal").c_str());
  ::unlink((dir + "/golden.ckpt").c_str());
  OnlineDataset dataset(RecoveryOptions(dir), 2);
  AddGoldenScorer(dataset);
  const OnlineDataset::RecoveryResult recovery = dataset.RecoverFromWal();
  ASSERT_TRUE(recovery.ok()) << recovery.error;
  EXPECT_FALSE(recovery.recovered);
  EXPECT_EQ(dataset.stats().total_ingested, 0u);
}

}  // namespace
}  // namespace subex
