#include "stats/two_sample_tests.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/rng.h"

namespace subex {
namespace {

TEST(WelchTest, HandComputedStatisticAndDf) {
  // Closed-form reference computed by hand:
  //   a = {1..5}, b = {2.2, 3.1, 4.9, 5.5}
  //   t = -0.8857354123158748, df = 6.65324739170809.
  const std::vector<double> a = {1, 2, 3, 4, 5};
  const std::vector<double> b = {2.2, 3.1, 4.9, 5.5};
  const TestResult r = WelchTTest(a, b);
  EXPECT_NEAR(r.statistic, -0.8857354123158748, 1e-12);
  EXPECT_NEAR(r.degrees_of_freedom, 6.65324739170809, 1e-10);
  EXPECT_GT(r.p_value, 0.35);
  EXPECT_LT(r.p_value, 0.5);
}

TEST(WelchTest, IdenticalSamplesGiveZeroStatistic) {
  const std::vector<double> a = {1.0, 2.0, 3.0};
  const TestResult r = WelchTTest(a, a);
  EXPECT_NEAR(r.statistic, 0.0, 1e-12);
  EXPECT_NEAR(r.p_value, 1.0, 1e-12);
}

TEST(WelchTest, StronglySeparatedSamplesRejected) {
  std::vector<double> a;
  std::vector<double> b;
  Rng rng(5);
  for (int i = 0; i < 40; ++i) {
    a.push_back(rng.Gaussian(0.0, 1.0));
    b.push_back(rng.Gaussian(10.0, 1.0));
  }
  const TestResult r = WelchTTest(a, b);
  EXPECT_LT(r.p_value, 1e-6);
  EXPECT_LT(r.statistic, -10.0);
}

TEST(WelchTest, SymmetryOfStatistic) {
  const std::vector<double> a = {1, 2, 3, 4};
  const std::vector<double> b = {5, 6, 9};
  const TestResult ab = WelchTTest(a, b);
  const TestResult ba = WelchTTest(b, a);
  EXPECT_NEAR(ab.statistic, -ba.statistic, 1e-12);
  EXPECT_NEAR(ab.p_value, ba.p_value, 1e-12);
}

TEST(WelchTest, DegenerateSmallSamples) {
  const std::vector<double> one = {1.0};
  const std::vector<double> several = {1.0, 2.0, 3.0};
  const TestResult r = WelchTTest(one, several);
  EXPECT_EQ(r.statistic, 0.0);
  EXPECT_EQ(r.p_value, 1.0);
}

TEST(WelchTest, BothConstantEqualMeans) {
  const std::vector<double> a = {2.0, 2.0, 2.0};
  const std::vector<double> b = {2.0, 2.0};
  const TestResult r = WelchTTest(a, b);
  EXPECT_EQ(r.p_value, 1.0);
}

TEST(WelchTest, BothConstantDifferentMeans) {
  const std::vector<double> a = {2.0, 2.0, 2.0};
  const std::vector<double> b = {3.0, 3.0};
  const TestResult r = WelchTTest(a, b);
  EXPECT_EQ(r.p_value, 0.0);
}

TEST(KsTest, HandComputedStatistic) {
  // a = {0.1, 0.2, 0.3, 0.4, 0.9}, b = {0.5, 0.6, 0.7, 0.8}:
  // at x = 0.4, F_a = 4/5 and F_b = 0 -> D = 0.8.
  const std::vector<double> a = {0.1, 0.2, 0.3, 0.4, 0.9};
  const std::vector<double> b = {0.5, 0.6, 0.7, 0.8};
  const TestResult r = KolmogorovSmirnovTest(a, b);
  EXPECT_NEAR(r.statistic, 0.8, 1e-12);
}

TEST(KsTest, IdenticalSamplesZeroStatistic) {
  const std::vector<double> a = {1.0, 2.0, 3.0, 4.0};
  const TestResult r = KolmogorovSmirnovTest(a, a);
  EXPECT_NEAR(r.statistic, 0.0, 1e-12);
  EXPECT_NEAR(r.p_value, 1.0, 1e-9);
}

TEST(KsTest, DisjointSupportsGiveStatisticOne) {
  const std::vector<double> a = {1.0, 2.0, 3.0};
  const std::vector<double> b = {10.0, 11.0, 12.0};
  const TestResult r = KolmogorovSmirnovTest(a, b);
  EXPECT_NEAR(r.statistic, 1.0, 1e-12);
}

TEST(KsTest, LargeSeparatedSamplesSmallPValue) {
  Rng rng(9);
  std::vector<double> a;
  std::vector<double> b;
  for (int i = 0; i < 200; ++i) {
    a.push_back(rng.Gaussian(0.0, 1.0));
    b.push_back(rng.Gaussian(2.0, 1.0));
  }
  const TestResult r = KolmogorovSmirnovTest(a, b);
  EXPECT_LT(r.p_value, 1e-6);
}

TEST(KsTest, SameDistributionLargeSamplesHighPValue) {
  Rng rng(11);
  std::vector<double> a;
  std::vector<double> b;
  for (int i = 0; i < 500; ++i) {
    a.push_back(rng.Gaussian(0.0, 1.0));
    b.push_back(rng.Gaussian(0.0, 1.0));
  }
  const TestResult r = KolmogorovSmirnovTest(a, b);
  EXPECT_GT(r.p_value, 0.01);
}

TEST(KsTest, EmptySampleDegenerate) {
  const std::vector<double> a;
  const std::vector<double> b = {1.0, 2.0};
  const TestResult r = KolmogorovSmirnovTest(a, b);
  EXPECT_EQ(r.statistic, 0.0);
  EXPECT_EQ(r.p_value, 1.0);
}

TEST(DispatchTest, RunTwoSampleTestDispatches) {
  const std::vector<double> a = {1, 2, 3, 4, 5};
  const std::vector<double> b = {6, 7, 8, 9};
  const TestResult welch = RunTwoSampleTest(TwoSampleTestKind::kWelch, a, b);
  const TestResult ks =
      RunTwoSampleTest(TwoSampleTestKind::kKolmogorovSmirnov, a, b);
  EXPECT_NEAR(welch.statistic, WelchTTest(a, b).statistic, 1e-15);
  EXPECT_NEAR(ks.statistic, KolmogorovSmirnovTest(a, b).statistic, 1e-15);
}

TEST(DispatchTest, Names) {
  EXPECT_STREQ(TwoSampleTestKindName(TwoSampleTestKind::kWelch), "welch");
  EXPECT_STREQ(TwoSampleTestKindName(TwoSampleTestKind::kKolmogorovSmirnov),
               "ks");
}

// Property sweep: the Welch p-value is approximately uniform under the null
// (here: both samples from N(0,1)), so its false-positive rate at level
// alpha should be ~alpha.
class WelchNullCalibration : public ::testing::TestWithParam<double> {};

TEST_P(WelchNullCalibration, FalsePositiveRateNearAlpha) {
  const double alpha = GetParam();
  Rng rng(1234);
  const int trials = 800;
  int rejections = 0;
  for (int trial = 0; trial < trials; ++trial) {
    std::vector<double> a;
    std::vector<double> b;
    for (int i = 0; i < 30; ++i) a.push_back(rng.Gaussian(0.0, 1.0));
    for (int i = 0; i < 25; ++i) b.push_back(rng.Gaussian(0.0, 1.0));
    if (WelchTTest(a, b).p_value < alpha) ++rejections;
  }
  const double rate = static_cast<double>(rejections) / trials;
  EXPECT_NEAR(rate, alpha, 3.0 * std::sqrt(alpha * (1 - alpha) / trials) +
                               0.01);
}

INSTANTIATE_TEST_SUITE_P(Alphas, WelchNullCalibration,
                         ::testing::Values(0.01, 0.05, 0.1, 0.2));

}  // namespace
}  // namespace subex
