#include "core/metrics.h"

#include <gtest/gtest.h>

#include <vector>

namespace subex {
namespace {

const Subspace kA({0, 1});
const Subspace kB({1, 2});
const Subspace kC({2, 3});
const Subspace kD({3, 4});

TEST(PrecisionAtKTest, Basic) {
  const std::vector<Subspace> ranked = {kA, kC, kB};
  const std::vector<Subspace> relevant = {kA, kB};
  EXPECT_DOUBLE_EQ(PrecisionAtK(ranked, relevant, 1), 1.0);
  EXPECT_DOUBLE_EQ(PrecisionAtK(ranked, relevant, 2), 0.5);
  EXPECT_NEAR(PrecisionAtK(ranked, relevant, 3), 2.0 / 3.0, 1e-12);
}

TEST(AveragePrecisionTest, PerfectRanking) {
  const std::vector<Subspace> ranked = {kA, kB, kC, kD};
  const std::vector<Subspace> relevant = {kA, kB};
  // P@1 * 1 + P@2 * 1 over |REL| = (1 + 1) / 2.
  EXPECT_DOUBLE_EQ(AveragePrecision(ranked, relevant), 1.0);
}

TEST(AveragePrecisionTest, RelevantAtBottom) {
  const std::vector<Subspace> ranked = {kC, kD, kA};
  const std::vector<Subspace> relevant = {kA};
  EXPECT_NEAR(AveragePrecision(ranked, relevant), 1.0 / 3.0, 1e-12);
}

TEST(AveragePrecisionTest, MixedRanking) {
  const std::vector<Subspace> ranked = {kA, kC, kB};
  const std::vector<Subspace> relevant = {kA, kB};
  // (P@1 + P@3) / 2 = (1 + 2/3) / 2.
  EXPECT_NEAR(AveragePrecision(ranked, relevant), (1.0 + 2.0 / 3.0) / 2.0,
              1e-12);
}

TEST(AveragePrecisionTest, MissedRelevantPenalizedByDenominator) {
  const std::vector<Subspace> ranked = {kA};
  const std::vector<Subspace> relevant = {kA, kB};
  EXPECT_DOUBLE_EQ(AveragePrecision(ranked, relevant), 0.5);
}

TEST(AveragePrecisionTest, NoRelevantReturnsZero) {
  const std::vector<Subspace> ranked = {kA};
  EXPECT_EQ(AveragePrecision(ranked, {}), 0.0);
}

TEST(AveragePrecisionTest, EmptyRankingZero) {
  EXPECT_EQ(AveragePrecision({}, {kA}), 0.0);
}

TEST(AveragePrecisionTest, IdenticalSubspaceMatchIsExact) {
  // {0,1} must not match {0,1,2} (§3.3: identity, not containment).
  const std::vector<Subspace> ranked = {Subspace({0, 1, 2})};
  const std::vector<Subspace> relevant = {Subspace({0, 1})};
  EXPECT_EQ(AveragePrecision(ranked, relevant), 0.0);
}

TEST(RecallTest, Basic) {
  const std::vector<Subspace> ranked = {kA, kC};
  EXPECT_DOUBLE_EQ(Recall(ranked, {kA, kB}), 0.5);
  EXPECT_DOUBLE_EQ(Recall(ranked, {kA, kC}), 1.0);
  EXPECT_DOUBLE_EQ(Recall(ranked, {kB}), 0.0);
  EXPECT_EQ(Recall(ranked, {}), 0.0);
}

TEST(ExplanationScorerTest, AveragesAcrossPoints) {
  ExplanationScorer scorer;
  scorer.AddPoint({kA}, {kA});        // AveP = 1, recall = 1.
  scorer.AddPoint({kC, kA}, {kA});    // AveP = 0.5, recall = 1.
  scorer.AddPoint({kC}, {kA});        // AveP = 0, recall = 0.
  EXPECT_EQ(scorer.num_points(), 3);
  EXPECT_NEAR(scorer.MeanAveragePrecision(), 0.5, 1e-12);
  EXPECT_NEAR(scorer.MeanRecall(), 2.0 / 3.0, 1e-12);
}

TEST(ExplanationScorerTest, EmptyScorer) {
  ExplanationScorer scorer;
  EXPECT_EQ(scorer.MeanAveragePrecision(), 0.0);
  EXPECT_EQ(scorer.MeanRecall(), 0.0);
}

TEST(RocAucTest, PerfectSeparation) {
  const std::vector<double> scores = {0.1, 0.2, 0.3, 0.9, 0.8};
  const std::vector<bool> labels = {false, false, false, true, true};
  EXPECT_DOUBLE_EQ(RocAuc(scores, labels), 1.0);
}

TEST(RocAucTest, PerfectInversion) {
  const std::vector<double> scores = {0.9, 0.8, 0.1};
  const std::vector<bool> labels = {false, false, true};
  EXPECT_DOUBLE_EQ(RocAuc(scores, labels), 0.0);
}

TEST(RocAucTest, TiesGetHalfCredit) {
  const std::vector<double> scores = {0.5, 0.5};
  const std::vector<bool> labels = {false, true};
  EXPECT_DOUBLE_EQ(RocAuc(scores, labels), 0.5);
}

TEST(RocAucTest, KnownMixedValue) {
  const std::vector<double> scores = {0.1, 0.4, 0.35, 0.8};
  const std::vector<bool> labels = {false, true, false, true};
  // Pairs: (0.4>0.1), (0.4>0.35), (0.8>0.1), (0.8>0.35) all correct except
  // none wrong -> AUC = 1.0? (0.4 vs 0.35 correct). All 4 pairs correct.
  EXPECT_DOUBLE_EQ(RocAuc(scores, labels), 1.0);
}

TEST(RocAucTest, SingleClassReturnsHalf) {
  EXPECT_EQ(RocAuc({0.1, 0.2}, {false, false}), 0.5);
}

}  // namespace
}  // namespace subex
