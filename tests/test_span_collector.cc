#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "common/json.h"
#include "obs/span_collector.h"

namespace subex {
namespace {

// Everything here observes collected spans, which only exist when
// instrumentation is compiled in; under SUBEX_OBS_DISABLED the collector is
// an inert stub whose export is the empty document (checked at the bottom).
#ifndef SUBEX_OBS_DISABLED

SpanRecord MakeSpan(const char* name, std::uint64_t trace_id,
                    std::uint64_t start_ns, std::uint64_t duration_ns) {
  SpanRecord record;
  record.name = name;
  record.trace_id = trace_id;
  record.span_id = NextSpanId();
  record.start_ns = start_ns;
  record.duration_ns = duration_ns;
  return record;
}

TEST(SpanCollectorTest, DisabledCollectorDropsRecordsSilently) {
  SpanCollector collector;
  EXPECT_FALSE(collector.enabled());
  collector.Record(MakeSpan("ignored", 1, 10, 5));
  EXPECT_TRUE(collector.Snapshot().empty());
}

TEST(SpanCollectorTest, SnapshotOrdersByStartTime) {
  SpanCollector collector;
  collector.Enable(16);
  collector.Record(MakeSpan("late", 7, 3000, 10));
  collector.Record(MakeSpan("early", 7, 1000, 10));
  collector.Record(MakeSpan("middle", 7, 2000, 10));
  const std::vector<SpanRecord> spans = collector.Snapshot();
  ASSERT_EQ(spans.size(), 3u);
  EXPECT_EQ(spans[0].name, "early");
  EXPECT_EQ(spans[1].name, "middle");
  EXPECT_EQ(spans[2].name, "late");
}

TEST(SpanCollectorTest, RingOverwritesOldestAndCountsDrops) {
  SpanCollector collector;
  collector.Enable(4);
  for (std::uint64_t i = 0; i < 10; ++i) {
    collector.Record(MakeSpan("s", 1, i, 1));
  }
  const std::vector<SpanRecord> spans = collector.Snapshot();
  ASSERT_EQ(spans.size(), 4u);
  // The survivors are the newest four, still in start order.
  EXPECT_EQ(spans[0].start_ns, 6u);
  EXPECT_EQ(spans[3].start_ns, 9u);
  EXPECT_EQ(collector.dropped(), 6u);
}

TEST(SpanCollectorTest, ReEnableDiscardsOldSpans) {
  SpanCollector collector;
  collector.Enable(8);
  collector.Record(MakeSpan("old", 1, 1, 1));
  collector.Enable(8);
  collector.Record(MakeSpan("new", 2, 2, 1));
  const std::vector<SpanRecord> spans = collector.Snapshot();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].name, "new");
}

TEST(SpanCollectorTest, ThreadsGetDistinctTids) {
  SpanCollector collector;
  collector.Enable(8);
  collector.Record(MakeSpan("main", 1, 1, 1));
  std::thread other(
      [&collector] { collector.Record(MakeSpan("worker", 1, 2, 1)); });
  other.join();
  const std::vector<SpanRecord> spans = collector.Snapshot();
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_NE(spans[0].tid, spans[1].tid);
}

// The TSan-relevant shape: many threads recording while another snapshots.
TEST(SpanCollectorTest, ConcurrentRecordAndSnapshotIsSafe) {
  SpanCollector collector;
  collector.Enable(64);
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&collector, t] {
      for (std::uint64_t i = 0; i < 2000; ++i) {
        collector.Record(
            MakeSpan("hot", static_cast<std::uint64_t>(t) + 1, i, 1));
      }
    });
  }
  for (int i = 0; i < 50; ++i) (void)collector.Snapshot();
  for (std::thread& thread : threads) thread.join();
  // 4 rings of 64: everything past the ring capacity counts as dropped.
  EXPECT_EQ(collector.Snapshot().size(), 4u * 64u);
  EXPECT_EQ(collector.dropped(), 4u * (2000u - 64u));
}

TEST(SpanCollectorTest, ChromeTraceJsonIsValidAndCarriesTraceIds) {
  SpanCollector collector;
  collector.Enable(8);
  collector.Record(MakeSpan("serve.request", 0xdeadbeef, 5000, 2500));
  const std::string json = collector.ToChromeTraceJson();
  EXPECT_TRUE(IsValidJson(json)) << json;
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"serve.request\""), std::string::npos);
  EXPECT_NE(json.find("0x00000000deadbeef"), std::string::npos);
}

TEST(SpanCollectorTest, ClearKeepsCollectingAfterwards) {
  SpanCollector collector;
  collector.Enable(8);
  collector.Record(MakeSpan("before", 1, 1, 1));
  collector.Clear();
  EXPECT_TRUE(collector.Snapshot().empty());
  collector.Record(MakeSpan("after", 1, 2, 1));
  EXPECT_EQ(collector.Snapshot().size(), 1u);
}

TEST(SpanCollectorTest, SteadyToWallPreservesDeltas) {
  const std::uint64_t a = SteadyToWallNs(1000000);
  const std::uint64_t b = SteadyToWallNs(4000000);
  EXPECT_EQ(b - a, 3000000u);
}

#else  // SUBEX_OBS_DISABLED

TEST(SpanCollectorTest, DisabledBuildExportsEmptyDocument) {
  SpanCollector& collector = SpanCollector::Global();
  collector.Enable(8);
  EXPECT_FALSE(collector.enabled());
  EXPECT_EQ(NextTraceId(), 0u);
  EXPECT_EQ(collector.ToChromeTraceJson(),
            "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[]}");
}

#endif  // SUBEX_OBS_DISABLED

}  // namespace
}  // namespace subex
