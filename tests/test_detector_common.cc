#include "detect/detector.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "core/metrics.h"
#include "stats/descriptive.h"

namespace subex {
namespace {

// Shared cross-detector property tests, parameterized over the three
// detector families of the testbed.
class DetectorPropertyTest : public ::testing::TestWithParam<DetectorKind> {
 protected:
  // A dataset with a dense blob and 5% gross outliers, *scattered* in
  // random directions so they do not form a micro-cluster (which would be
  // invisible to small-k neighborhood detectors like Fast ABOD).
  static Dataset MakeContaminated(int n, std::uint64_t seed) {
    Rng rng(seed);
    Matrix m(n, 3);
    std::vector<int> outliers;
    for (int p = 0; p < n; ++p) {
      const bool is_outlier = p >= n - n / 20;
      for (int f = 0; f < 3; ++f) {
        if (is_outlier) {
          const double sign = rng.Uniform() < 0.5 ? -1.0 : 1.0;
          m(p, f) = 0.35 + sign * rng.Uniform(0.3, 0.5);
        } else {
          m(p, f) = rng.Gaussian(0.35, 0.06);
        }
      }
      if (is_outlier) outliers.push_back(p);
    }
    return Dataset(std::move(m), std::move(outliers));
  }
};

TEST_P(DetectorPropertyTest, FactoryProducesWorkingDetector) {
  const auto detector = MakeDetector(GetParam());
  ASSERT_NE(detector, nullptr);
  EXPECT_EQ(detector->name(), DetectorKindName(GetParam()));
}

TEST_P(DetectorPropertyTest, SeparatesGrossOutliers) {
  const auto detector = MakeDetector(GetParam());
  const Dataset d = MakeContaminated(300, 21);
  const std::vector<double> scores = detector->Score(d, Subspace());
  std::vector<bool> labels(d.num_points(), false);
  for (int p : d.outlier_indices()) labels[p] = true;
  EXPECT_GT(RocAuc(scores, labels), 0.95)
      << "detector " << detector->name();
}

TEST_P(DetectorPropertyTest, OneScorePerPointAllFinite) {
  const auto detector = MakeDetector(GetParam());
  const Dataset d = MakeContaminated(120, 22);
  const std::vector<double> scores = detector->Score(d, Subspace({0, 2}));
  ASSERT_EQ(scores.size(), d.num_points());
  for (double s : scores) EXPECT_TRUE(std::isfinite(s));
}

TEST_P(DetectorPropertyTest, ScoreIsPure) {
  const auto detector = MakeDetector(GetParam());
  const Dataset d = MakeContaminated(100, 23);
  EXPECT_EQ(detector->Score(d, Subspace({0, 1})),
            detector->Score(d, Subspace({0, 1})));
}

TEST_P(DetectorPropertyTest, StandardizedScoresAreZeroMeanUnitVariance) {
  const auto detector = MakeDetector(GetParam());
  const Dataset d = MakeContaminated(150, 24);
  const std::vector<double> z = ScoreStandardized(*detector, d, Subspace());
  EXPECT_NEAR(Mean(z), 0.0, 1e-9);
  EXPECT_NEAR(PopulationVariance(z), 1.0, 1e-9);
}

TEST_P(DetectorPropertyTest, StandardizedOutlierScoresPositive) {
  const auto detector = MakeDetector(GetParam());
  const Dataset d = MakeContaminated(300, 25);
  const std::vector<double> z = ScoreStandardized(*detector, d, Subspace());
  for (int p : d.outlier_indices()) {
    EXPECT_GT(z[p], 1.0) << "detector " << detector->name();
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllDetectors, DetectorPropertyTest,
    ::testing::ValuesIn(AllDetectorKinds()),
    [](const ::testing::TestParamInfo<DetectorKind>& info) {
      return DetectorKindName(info.param);
    });

TEST(DetectorFactoryTest, AllKindsListed) {
  EXPECT_EQ(AllDetectorKinds().size(), 3u);
}

TEST(DetectorFactoryTest, KindNames) {
  EXPECT_STREQ(DetectorKindName(DetectorKind::kLof), "LOF");
  EXPECT_STREQ(DetectorKindName(DetectorKind::kFastAbod), "FastABOD");
  EXPECT_STREQ(DetectorKindName(DetectorKind::kIsolationForest), "iForest");
}

}  // namespace
}  // namespace subex
