#include "core/ground_truth_builder.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "data/generators.h"
#include "detect/lof.h"

namespace subex {
namespace {

TEST(GroundTruthBuilderTest, FindsThePlantedSubspaceOfFigure1) {
  const SyntheticDataset d = GenerateFigure1Dataset(1, 200);
  const Lof lof(15);
  GroundTruthBuilderOptions options;
  options.min_dim = 2;
  options.max_dim = 2;
  const GroundTruth gt =
      BuildGroundTruthByExhaustiveSearch(d.dataset, lof, options);
  // o1's best 2d subspace is the planted {0,1}.
  ASSERT_EQ(gt.RelevantFor(0).size(), 1u);
  EXPECT_EQ(gt.RelevantFor(0).front(), Subspace({0, 1}));
}

TEST(GroundTruthBuilderTest, OneSubspacePerOutlierPerDimension) {
  FullSpaceGeneratorConfig config;
  config.num_points = 80;
  config.num_features = 6;
  config.num_outliers = 8;
  config.seed = 2;
  const SyntheticDataset d = GenerateFullSpaceDataset(config);
  const Lof lof(15);
  GroundTruthBuilderOptions options;
  options.min_dim = 2;
  options.max_dim = 4;
  const GroundTruth gt =
      BuildGroundTruthByExhaustiveSearch(d.dataset, lof, options);
  for (int p : d.dataset.outlier_indices()) {
    const auto& rel = gt.RelevantFor(p);
    ASSERT_EQ(rel.size(), 3u) << "expected one subspace per dim 2..4";
    std::vector<std::size_t> dims;
    for (const Subspace& s : rel) dims.push_back(s.size());
    std::sort(dims.begin(), dims.end());
    EXPECT_EQ(dims, (std::vector<std::size_t>{2, 3, 4}));
  }
}

TEST(GroundTruthBuilderTest, ParallelMatchesSequential) {
  FullSpaceGeneratorConfig config;
  config.num_points = 60;
  config.num_features = 6;
  config.num_outliers = 6;
  config.seed = 3;
  const SyntheticDataset d = GenerateFullSpaceDataset(config);
  const Lof lof(15);
  GroundTruthBuilderOptions options;
  options.min_dim = 2;
  options.max_dim = 3;
  const GroundTruth seq =
      BuildGroundTruthByExhaustiveSearch(d.dataset, lof, options, nullptr);
  ThreadPool pool(4);
  const GroundTruth par =
      BuildGroundTruthByExhaustiveSearch(d.dataset, lof, options, &pool);
  for (int p : d.dataset.outlier_indices()) {
    EXPECT_EQ(seq.RelevantFor(p), par.RelevantFor(p));
  }
}

TEST(GroundTruthBuilderTest, BestSubspaceMaximizesStandardizedScore) {
  const SyntheticDataset d = GenerateFigure1Dataset(4, 150);
  const Lof lof(15);
  GroundTruthBuilderOptions options;
  options.min_dim = 2;
  options.max_dim = 2;
  const GroundTruth gt =
      BuildGroundTruthByExhaustiveSearch(d.dataset, lof, options);
  const int p = d.dataset.outlier_indices().front();
  const Subspace best = gt.RelevantFor(p).front();
  const double best_score = ScoreStandardized(lof, d.dataset, best)[p];
  for (const Subspace& other :
       {Subspace({0, 1}), Subspace({0, 2}), Subspace({1, 2})}) {
    EXPECT_GE(best_score, ScoreStandardized(lof, d.dataset, other)[p] - 1e-9);
  }
}

}  // namespace
}  // namespace subex
