// Injected transport faults against a live client/server pair: EINTR and
// short-read/write resilience, hard failures surfacing as clean client
// statuses, wire deadlines expiring in queue and in compute, the retry
// budget, and the circuit breaker's open/half-open cycle.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "data/generators.h"
#include "detect/lof.h"
#include "explain/beam.h"
#include "fault/fault.h"
#include "net/explain_client.h"
#include "net/explain_server.h"
#include "serve/scoring_service.h"

namespace subex {
namespace {

SyntheticDataset SmallHics(std::uint64_t seed = 77) {
  HicsGeneratorConfig config;
  config.num_points = 120;
  config.subspace_dims = {2, 2, 3};  // 7 features.
  config.seed = seed;
  return GenerateHicsDataset(config);
}

/// Blocks every `Score` call while the gate is closed — makes "a request
/// is computing right now" a deterministic state instead of a race.
class GateDetector : public Detector {
 public:
  GateDetector(const Detector& inner, std::atomic<bool>* gate)
      : inner_(inner), gate_(gate) {}
  std::string name() const override { return inner_.name(); }
  std::vector<double> Score(const Dataset& data,
                            const Subspace& subspace) const override {
    while (!gate_->load(std::memory_order_acquire)) {
      std::this_thread::yield();
    }
    return inner_.Score(data, subspace);
  }

 private:
  const Detector& inner_;
  std::atomic<bool>* gate_;
};

bool WaitFor(const std::function<bool()>& predicate, int timeout_ms = 5000) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  while (std::chrono::steady_clock::now() < deadline) {
    if (predicate()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return predicate();
}

class NetFaultTest : public ::testing::Test {
 protected:
  void StartServer(const ExplainServerOptions& options = {},
                   std::size_t pool_threads = 2, bool gated = false) {
    gate_.store(true, std::memory_order_release);
    pool_ = std::make_unique<ThreadPool>(pool_threads);
    const Detector* detector = &lof_;
    if (gated) {
      gate_.store(false, std::memory_order_release);
      gated_lof_ = std::make_unique<GateDetector>(lof_, &gate_);
      detector = gated_lof_.get();
    }
    service_ = std::make_unique<ScoringService>(
        *detector, data_.dataset, ScoringServiceOptions{}, pool_.get());
    server_ = std::make_unique<ExplainServer>(options, pool_.get());
    server_->RegisterService(*service_);
    server_->RegisterExplainer("Beam", beam_);
    std::string error;
    ASSERT_TRUE(server_->Start(&error)) << error;
  }

  void OpenGate() { gate_.store(true, std::memory_order_release); }

  ExplainClient MakeClient(ExplainClientOptions options = {}) {
    ExplainClient client(options);
    std::string error;
    EXPECT_TRUE(client.Connect("127.0.0.1", server_->port(), &error)) << error;
    return client;
  }

  SyntheticDataset data_ = SmallHics();
  Lof lof_{15};
  Beam beam_;
  std::atomic<bool> gate_{true};
  std::unique_ptr<GateDetector> gated_lof_;
  std::unique_ptr<ThreadPool> pool_;
  std::unique_ptr<ScoringService> service_;
  std::unique_ptr<ExplainServer> server_;
};

TEST_F(NetFaultTest, ShortReadsAndWritesStillRoundTripBitwise) {
  StartServer();
  const std::vector<double> direct =
      ScoreStandardized(lof_, data_.dataset, Subspace({0, 1}));

  FaultControl control;
  FaultRule torn;
  torn.action = FaultAction::kShort;
  torn.limit = 400;  // Both sides read/write one byte at a time for a while.
  control.Arm(FaultPoint::kSocketRead, torn);
  control.Arm(FaultPoint::kSocketWrite, torn);

  ExplainClient client = MakeClient();
  const ExplainClient::ScoreReply reply = client.Score("LOF", Subspace({0, 1}));
  ASSERT_TRUE(reply.ok()) << reply.error;
  EXPECT_EQ(reply.scores, direct);  // Reassembly is invisible to the payload.
  EXPECT_EQ(client.stats().transport_errors, 0u);
}

TEST_F(NetFaultTest, EintrOnEverySocketOpStillRoundTrips) {
  StartServer();
  FaultControl control;
  FaultRule eintr;
  eintr.action = FaultAction::kEintr;
  eintr.limit = 40;  // Bounded: an unbounded certain EINTR would spin.
  control.Arm(FaultPoint::kSocketRead, eintr);
  control.Arm(FaultPoint::kSocketWrite, eintr);
  control.Arm(FaultPoint::kSocketConnect, eintr);

  ExplainClient client = MakeClient();
  const ExplainClient::ScoreReply reply = client.Score("LOF", Subspace({2}));
  ASSERT_TRUE(reply.ok()) << reply.error;
  EXPECT_EQ(reply.scores,
            ScoreStandardized(lof_, data_.dataset, Subspace({2})));
}

TEST_F(NetFaultTest, HardReadFaultTearsConnectionAndReconnectRecovers) {
  StartServer();
  ExplainClient client = MakeClient();
  ASSERT_TRUE(client.Score("LOF", Subspace({0})).ok());

  {
    FaultControl control;
    FaultRule fail;
    fail.limit = 1;
    control.Arm(FaultPoint::kSocketRead, fail);
    const ExplainClient::ScoreReply reply = client.Score("LOF", Subspace({0}));
    EXPECT_EQ(reply.status, ClientStatus::kTransportError) << reply.error;
    EXPECT_FALSE(client.connected());
  }

  std::string error;
  ASSERT_TRUE(client.Connect("127.0.0.1", server_->port(), &error)) << error;
  const ExplainClient::ScoreReply reply = client.Score("LOF", Subspace({0}));
  ASSERT_TRUE(reply.ok()) << reply.error;
  const ClientStatsSnapshot stats = client.stats();
  EXPECT_EQ(stats.transport_errors, 1u);
  EXPECT_EQ(stats.reconnects, 1u);
}

TEST_F(NetFaultTest, ConnectFaultSurfacesAndRetrySucceeds) {
  StartServer();
  FaultControl control;
  FaultRule fail;
  fail.limit = 1;
  control.Arm(FaultPoint::kSocketConnect, fail);

  ExplainClient client;
  std::string error;
  EXPECT_FALSE(client.Connect("127.0.0.1", server_->port(), &error));
  EXPECT_NE(error.find("injected"), std::string::npos) << error;
  ASSERT_TRUE(client.Connect("127.0.0.1", server_->port(), &error)) << error;
  EXPECT_TRUE(client.Score("LOF", Subspace({0})).ok());
}

TEST_F(NetFaultTest, AcceptFaultDelaysButDoesNotDropConnections) {
  StartServer();
  FaultControl control;
  FaultRule fail;
  fail.limit = 3;  // The level-triggered listener re-signals until clear.
  control.Arm(FaultPoint::kSocketAccept, fail);

  ExplainClient client = MakeClient();
  const ExplainClient::ScoreReply reply = client.Score("LOF", Subspace({1}));
  ASSERT_TRUE(reply.ok()) << reply.error;
}

TEST_F(NetFaultTest, DeadlineExpiresInQueueBehindASlowRequest) {
  StartServer(ExplainServerOptions{}, /*pool_threads=*/1, /*gated=*/true);

  // A: no deadline, blocks the single pool thread on the gate.
  std::thread slow([&] {
    ExplainClient client = MakeClient();
    EXPECT_TRUE(client.Score("LOF", Subspace({0})).ok());
  });
  ASSERT_TRUE(WaitFor([&] { return server_->stats().requests_admitted >= 1; }));

  // B: 30 ms budget, admitted but stuck in the queue behind A.
  ExplainClient::ScoreReply reply_b;
  ClientStatsSnapshot stats_b;
  std::thread expired([&] {
    ExplainClientOptions options;
    options.deadline_ms = 30;
    ExplainClient client = MakeClient(options);
    reply_b = client.Score("LOF", Subspace({1}));
    stats_b = client.stats();
  });
  ASSERT_TRUE(WaitFor([&] { return server_->stats().requests_admitted >= 2; }));
  std::this_thread::sleep_for(std::chrono::milliseconds(80));
  OpenGate();
  slow.join();
  expired.join();

  EXPECT_EQ(reply_b.status, ClientStatus::kDeadlineExceeded) << reply_b.error;
  EXPECT_EQ(stats_b.deadline_exceeded, 1u);
  const ServerStatsSnapshot stats = server_->stats();
  EXPECT_GE(stats.deadline_expired_queue, 1u);
  EXPECT_EQ(stats.protocol_errors, 0u);
}

TEST_F(NetFaultTest, DeadlineExpiresDuringCompute) {
  StartServer(ExplainServerOptions{}, /*pool_threads=*/1, /*gated=*/true);

  ExplainClient::ScoreReply reply;
  std::thread blocked([&] {
    ExplainClientOptions options;
    options.deadline_ms = 60;  // Survives the queue, dies in compute.
    ExplainClient client = MakeClient(options);
    reply = client.Score("LOF", Subspace({0}));
  });
  ASSERT_TRUE(WaitFor([&] { return server_->stats().requests_admitted >= 1; }));
  std::this_thread::sleep_for(std::chrono::milliseconds(150));
  OpenGate();
  blocked.join();

  EXPECT_EQ(reply.status, ClientStatus::kDeadlineExceeded) << reply.error;
  EXPECT_GE(server_->stats().deadline_expired_compute, 1u);
}

TEST_F(NetFaultTest, ExhaustedRetryBudgetSurfacesBusyImmediately) {
  ExplainServerOptions options;
  options.queue_capacity = 1;
  StartServer(options, /*pool_threads=*/1, /*gated=*/true);

  std::thread slow([&] {
    ExplainClient client = MakeClient();
    EXPECT_TRUE(client.Score("LOF", Subspace({0})).ok());
  });
  ASSERT_TRUE(WaitFor([&] { return server_->stats().requests_admitted >= 1; }));

  ExplainClientOptions no_budget;
  no_budget.retry_budget_initial = 0.0;
  ExplainClient client = MakeClient(no_budget);
  const ExplainClient::ScoreReply reply = client.Score("LOF", Subspace({1}));
  EXPECT_EQ(reply.status, ClientStatus::kBusy);
  const ClientStatsSnapshot stats = client.stats();
  EXPECT_EQ(stats.retries_denied, 1u);
  EXPECT_EQ(stats.busy_retries, 1u);  // The reply was seen...
  EXPECT_EQ(stats.backoff_ns, 0u);    // ...but never slept on or retried.

  OpenGate();
  slow.join();
}

TEST_F(NetFaultTest, CircuitBreakerOpensFailsFastAndRecoversHalfOpen) {
  StartServer();
  ExplainClientOptions options;
  options.breaker_failure_threshold = 2;
  options.breaker_cooldown_ms = 100;
  ExplainClient client = MakeClient(options);
  ASSERT_TRUE(client.Score("LOF", Subspace({0})).ok());

  // Failure 1: an injected send failure on the live connection.
  {
    FaultControl control;
    FaultRule fail;
    fail.limit = 1;
    control.Arm(FaultPoint::kSocketWrite, fail);
    EXPECT_EQ(client.Score("LOF", Subspace({0})).status,
              ClientStatus::kTransportError);
  }
  // Failure 2: the torn connection (the client never reconnects on its
  // own) — this trips the threshold and opens the breaker.
  EXPECT_EQ(client.Score("LOF", Subspace({0})).status,
            ClientStatus::kTransportError);
  // Open: fail fast without touching the socket.
  const ExplainClient::ScoreReply shorted = client.Score("LOF", Subspace({0}));
  EXPECT_EQ(shorted.status, ClientStatus::kCircuitOpen);
  {
    const ClientStatsSnapshot stats = client.stats();
    EXPECT_EQ(stats.circuit_opens, 1u);
    EXPECT_EQ(stats.short_circuits, 1u);
    EXPECT_EQ(stats.transport_errors, 2u);
  }

  // Past the cooldown, the next call is the half-open probe; with the
  // connection re-established it succeeds and closes the breaker.
  std::string error;
  ASSERT_TRUE(client.Connect("127.0.0.1", server_->port(), &error)) << error;
  std::this_thread::sleep_for(std::chrono::milliseconds(120));
  EXPECT_TRUE(client.Score("LOF", Subspace({0})).ok());
  EXPECT_TRUE(client.Score("LOF", Subspace({0})).ok());
  const ClientStatsSnapshot stats = client.stats();
  EXPECT_EQ(stats.circuit_opens, 1u);   // It never re-opened.
  EXPECT_EQ(stats.short_circuits, 1u);  // Only the one fast failure.
}

}  // namespace
}  // namespace subex
