#include "ml/regression_tree.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"

namespace subex {
namespace {

TEST(RegressionTreeTest, ConstantTargetIsSingleLeaf) {
  Matrix x = {{1.0}, {2.0}, {3.0}, {4.0}, {5.0}, {6.0},
              {7.0}, {8.0}, {9.0}, {10.0}};
  const std::vector<double> y(10, 3.5);
  RegressionTree tree;
  tree.Fit(x, y);
  EXPECT_EQ(tree.num_nodes(), 1u);
  EXPECT_DOUBLE_EQ(tree.Predict(x.Row(0)), 3.5);
}

TEST(RegressionTreeTest, LearnsStepFunction) {
  Rng rng(1);
  Matrix x(200, 2);
  std::vector<double> y(200);
  for (int i = 0; i < 200; ++i) {
    x(i, 0) = rng.Uniform();
    x(i, 1) = rng.Uniform();
    y[i] = x(i, 0) < 0.5 ? -1.0 : 1.0;  // Depends only on feature 0.
  }
  RegressionTreeOptions options;
  options.max_depth = 3;
  RegressionTree tree;
  tree.Fit(x, y, options);
  EXPECT_GT(tree.RSquared(x, y), 0.99);
  // All importance on feature 0.
  const std::vector<double> importance = tree.FeatureImportances();
  EXPECT_GT(importance[0], 0.95);
  EXPECT_LT(importance[1], 0.05);
}

TEST(RegressionTreeTest, LearnsAdditiveTwoFeatureTarget) {
  Rng rng(2);
  Matrix x(400, 3);
  std::vector<double> y(400);
  for (int i = 0; i < 400; ++i) {
    for (int f = 0; f < 3; ++f) x(i, f) = rng.Uniform();
    y[i] = (x(i, 0) < 0.5 ? 0.0 : 1.0) + (x(i, 1) < 0.5 ? 0.0 : 0.5);
  }
  RegressionTreeOptions options;
  options.max_depth = 4;
  RegressionTree tree;
  tree.Fit(x, y, options);
  EXPECT_GT(tree.RSquared(x, y), 0.95);
  const std::vector<double> importance = tree.FeatureImportances();
  EXPECT_GT(importance[0], importance[1]);  // Larger effect, larger credit.
  EXPECT_LT(importance[2], 0.05);           // Noise feature unused.
}

TEST(RegressionTreeTest, MaxDepthZeroIsStump) {
  Matrix x = {{0.0}, {1.0}, {2.0}, {3.0}, {4.0}, {5.0},
              {6.0}, {7.0}, {8.0}, {9.0}};
  std::vector<double> y = {0, 0, 0, 0, 0, 1, 1, 1, 1, 1};
  RegressionTreeOptions options;
  options.max_depth = 0;
  RegressionTree tree;
  tree.Fit(x, y, options);
  EXPECT_EQ(tree.num_nodes(), 1u);
  EXPECT_DOUBLE_EQ(tree.Predict(x.Row(0)), 0.5);  // The global mean.
}

TEST(RegressionTreeTest, MinSamplesPerLeafRespected) {
  Matrix x(10, 1);
  std::vector<double> y(10);
  for (int i = 0; i < 10; ++i) {
    x(i, 0) = i;
    y[i] = i < 9 ? 0.0 : 100.0;  // Splitting off one sample is forbidden.
  }
  RegressionTreeOptions options;
  options.min_samples_per_leaf = 3;
  RegressionTree tree;
  tree.Fit(x, y, options);
  // The best "pure" split (9 vs 1) violates min_samples_per_leaf; the tree
  // may still split elsewhere but never isolate fewer than 3 samples, so
  // the top sample's prediction is polluted by its leaf-mates.
  EXPECT_LT(tree.Predict(x.Row(9)), 100.0 * 0.5);
}

TEST(RegressionTreeTest, PredictAllMatchesPredict) {
  Rng rng(3);
  Matrix x(50, 2);
  std::vector<double> y(50);
  for (int i = 0; i < 50; ++i) {
    x(i, 0) = rng.Uniform();
    x(i, 1) = rng.Uniform();
    y[i] = x(i, 0) + x(i, 1);
  }
  RegressionTree tree;
  tree.Fit(x, y);
  const std::vector<double> all = tree.PredictAll(x);
  for (int i = 0; i < 50; ++i) {
    EXPECT_DOUBLE_EQ(all[i], tree.Predict(x.Row(i)));
  }
}

TEST(RegressionTreeTest, DecisionPathContainsSplitFeature) {
  Rng rng(4);
  Matrix x(100, 3);
  std::vector<double> y(100);
  for (int i = 0; i < 100; ++i) {
    for (int f = 0; f < 3; ++f) x(i, f) = rng.Uniform();
    y[i] = x(i, 2) < 0.5 ? 0.0 : 1.0;
  }
  RegressionTree tree;
  tree.Fit(x, y);
  const std::vector<int> path = tree.DecisionPathFeatures(x.Row(0));
  ASSERT_FALSE(path.empty());
  EXPECT_EQ(path.front(), 2);  // The root split is on the step feature.
}

TEST(RegressionTreeTest, ImportancesSumToOneWhenSplit) {
  Rng rng(5);
  Matrix x(100, 4);
  std::vector<double> y(100);
  for (int i = 0; i < 100; ++i) {
    for (int f = 0; f < 4; ++f) x(i, f) = rng.Uniform();
    y[i] = 2.0 * x(i, 1) - x(i, 3);
  }
  RegressionTree tree;
  tree.Fit(x, y);
  const std::vector<double> importance = tree.FeatureImportances();
  double sum = 0.0;
  for (double v : importance) {
    EXPECT_GE(v, 0.0);
    sum += v;
  }
  EXPECT_NEAR(sum, 1.0, 1e-9);
  EXPECT_GT(importance[1], importance[0]);
}

TEST(RegressionTreeTest, RefitReplacesTree) {
  Matrix x = {{0.0}, {1.0}, {2.0}, {3.0}, {4.0}, {5.0},
              {6.0}, {7.0}, {8.0}, {9.0}};
  std::vector<double> a(10, 1.0);
  std::vector<double> b(10, 2.0);
  RegressionTree tree;
  tree.Fit(x, a);
  tree.Fit(x, b);
  EXPECT_DOUBLE_EQ(tree.Predict(x.Row(0)), 2.0);
}

TEST(RegressionTreeTest, SingleSampleFit) {
  Matrix x = {{1.0, 2.0}};
  const std::vector<double> y = {7.0};
  RegressionTree tree;
  tree.Fit(x, y);
  EXPECT_DOUBLE_EQ(tree.Predict(x.Row(0)), 7.0);
}

}  // namespace
}  // namespace subex
