#include "explain/refout.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "data/generators.h"
#include "detect/lof.h"

namespace subex {
namespace {

RefOut::Options SmallOptions() {
  RefOut::Options options;
  options.pool_size = 60;
  options.beam_width = 40;
  options.seed = 5;
  return options;
}

TEST(RefOutTest, RecoversPlantedSubspaceForSubspaceOutliers) {
  // RefOut's sweet spot (§4.1): subspace outliers, moderate dataset
  // dimensionality, LOF.
  HicsGeneratorConfig config;
  config.num_points = 300;
  config.subspace_dims = {2, 3, 2};
  config.seed = 13;
  const SyntheticDataset d = GenerateHicsDataset(config);
  const Lof lof(15);
  const RefOut refout(SmallOptions());

  int recovered_at_rank1 = 0;
  int evaluated = 0;
  for (int p : d.dataset.outlier_indices()) {
    for (const Subspace& rel : d.ground_truth.RelevantFor(p)) {
      if (rel.size() != 2) continue;
      ++evaluated;
      const RankedSubspaces result =
          refout.Explain(d.dataset, lof, p, 2);
      ASSERT_FALSE(result.empty());
      if (result.subspaces.front() == rel) ++recovered_at_rank1;
    }
  }
  ASSERT_GT(evaluated, 0);
  // The random pool makes recovery probabilistic; most must succeed.
  EXPECT_GE(recovered_at_rank1, evaluated * 7 / 10);
}

TEST(RefOutTest, ReturnsOnlyTargetDimensionality) {
  const SyntheticDataset d = GenerateFigure1Dataset(7, 150);
  const Lof lof(15);
  const RefOut refout(SmallOptions());
  const RankedSubspaces result = refout.Explain(d.dataset, lof, 0, 2);
  for (const Subspace& s : result.subspaces) EXPECT_EQ(s.size(), 2u);
}

TEST(RefOutTest, DeterministicPerPoint) {
  const SyntheticDataset d = GenerateFigure1Dataset(8, 150);
  const Lof lof(15);
  const RefOut refout(SmallOptions());
  const RankedSubspaces a = refout.Explain(d.dataset, lof, 0, 2);
  const RankedSubspaces b = refout.Explain(d.dataset, lof, 0, 2);
  EXPECT_EQ(a.subspaces, b.subspaces);
}

TEST(RefOutTest, DifferentPointsGetDifferentPools) {
  const SyntheticDataset d = GenerateFigure1Dataset(9, 150);
  const Lof lof(15);
  const RefOut refout(SmallOptions());
  // Both calls must succeed; the per-point pool salting is observable via
  // the (usually) different candidate tails.
  const RankedSubspaces a = refout.Explain(d.dataset, lof, 0, 2);
  const RankedSubspaces b = refout.Explain(d.dataset, lof, 1, 2);
  EXPECT_FALSE(a.empty());
  EXPECT_FALSE(b.empty());
}

TEST(RefOutTest, ScoresSortedDescending) {
  const SyntheticDataset d = GenerateFigure1Dataset(10, 150);
  const Lof lof(15);
  const RefOut refout(SmallOptions());
  const RankedSubspaces result = refout.Explain(d.dataset, lof, 0, 2);
  for (std::size_t i = 1; i < result.scores.size(); ++i) {
    EXPECT_GE(result.scores[i - 1], result.scores[i]);
  }
}

TEST(RefOutTest, RespectsMaxResults) {
  const SyntheticDataset d = GenerateFigure1Dataset(11, 150);
  const Lof lof(15);
  RefOut::Options options = SmallOptions();
  options.max_results = 3;
  const RefOut refout(options);
  EXPECT_LE(refout.Explain(d.dataset, lof, 0, 2).size(), 3u);
}

TEST(RefOutTest, ProjectionRatioClampedForTinyDatasets) {
  // 3 features with ratio 0.7 -> projection dim 2; must still work for
  // target dim 2.
  const SyntheticDataset d = GenerateFigure1Dataset(12, 120);
  const Lof lof(15);
  const RefOut refout(SmallOptions());
  const RankedSubspaces result = refout.Explain(d.dataset, lof, 0, 2);
  EXPECT_FALSE(result.empty());
}

TEST(RefOutTest, KsTestVariantRuns) {
  const SyntheticDataset d = GenerateFigure1Dataset(13, 150);
  const Lof lof(15);
  RefOut::Options options = SmallOptions();
  options.test = TwoSampleTestKind::kKolmogorovSmirnov;
  const RefOut refout(options);
  EXPECT_FALSE(refout.Explain(d.dataset, lof, 0, 2).empty());
}

}  // namespace
}  // namespace subex
