#include "data/generators.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <set>

#include "common/topk.h"
#include "detect/detector.h"
#include "detect/lof.h"

namespace subex {
namespace {

HicsGeneratorConfig SmallConfig() {
  HicsGeneratorConfig config;
  config.num_points = 300;
  config.subspace_dims = {2, 3};
  config.outliers_per_subspace = 5;
  config.seed = 99;
  return config;
}

TEST(HicsGeneratorTest, ShapeMatchesConfig) {
  const SyntheticDataset d = GenerateHicsDataset(SmallConfig());
  EXPECT_EQ(d.dataset.num_points(), 300u);
  EXPECT_EQ(d.dataset.num_features(), 5u);
  EXPECT_EQ(d.dataset.outlier_indices().size(), 10u);
  EXPECT_EQ(d.relevant_subspaces.size(), 2u);
  EXPECT_EQ(d.name, "hics_5d");
}

TEST(HicsGeneratorTest, SubspacesPartitionFeatureSpace) {
  const SyntheticDataset d = GenerateHicsDataset(SmallConfig());
  std::set<FeatureId> covered;
  for (const Subspace& s : d.relevant_subspaces) {
    for (FeatureId f : s.features()) {
      EXPECT_TRUE(covered.insert(f).second) << "feature in two subspaces";
    }
  }
  EXPECT_EQ(covered.size(), d.dataset.num_features());
}

TEST(HicsGeneratorTest, ValuesInUnitInterval) {
  const SyntheticDataset d = GenerateHicsDataset(SmallConfig());
  for (std::size_t p = 0; p < d.dataset.num_points(); ++p) {
    for (std::size_t f = 0; f < d.dataset.num_features(); ++f) {
      EXPECT_GE(d.dataset.Value(p, f), 0.0);
      EXPECT_LE(d.dataset.Value(p, f), 1.0);
    }
  }
}

TEST(HicsGeneratorTest, GroundTruthCoversEveryOutlier) {
  const SyntheticDataset d = GenerateHicsDataset(SmallConfig());
  for (int p : d.dataset.outlier_indices()) {
    EXPECT_FALSE(d.ground_truth.RelevantFor(p).empty());
  }
  EXPECT_EQ(d.ground_truth.ExplainedPoints(), d.dataset.outlier_indices());
}

TEST(HicsGeneratorTest, EachSubspaceExplainsExactlyFiveOutliers) {
  const SyntheticDataset d = GenerateHicsDataset(SmallConfig());
  EXPECT_NEAR(d.ground_truth.MeanOutliersPerSubspace(), 5.0, 1e-12);
}

TEST(HicsGeneratorTest, Deterministic) {
  const SyntheticDataset a = GenerateHicsDataset(SmallConfig());
  const SyntheticDataset b = GenerateHicsDataset(SmallConfig());
  EXPECT_TRUE(a.dataset.matrix() == b.dataset.matrix());
  EXPECT_EQ(a.dataset.outlier_indices(), b.dataset.outlier_indices());
}

TEST(HicsGeneratorTest, SharedOutliersReduceDistinctCount) {
  HicsGeneratorConfig config = SmallConfig();
  config.subspace_dims = {2, 3, 4};
  config.num_shared_outliers = 2;
  const SyntheticDataset d = GenerateHicsDataset(config);
  // 3 * 5 slots - 2 shared = 13 distinct outliers.
  EXPECT_EQ(d.dataset.outlier_indices().size(), 13u);
  // The shared points carry two relevant subspaces each.
  int with_two = 0;
  for (int p : d.dataset.outlier_indices()) {
    if (d.ground_truth.RelevantFor(p).size() == 2) ++with_two;
  }
  EXPECT_EQ(with_two, 2);
}

// The central structural property of the HiCS datasets (§3.2): planted
// outliers score at the very top of LOF's ranking inside their relevant
// subspace, but are masked (ordinary scores) in the projection that drops
// the response feature.
TEST(HicsGeneratorTest, OutliersVisibleJointlyMaskedInProjections) {
  const SyntheticDataset d = GenerateHicsDataset(SmallConfig());
  const Lof lof(15);
  for (const Subspace& relevant : d.relevant_subspaces) {
    if (relevant.size() < 3) continue;  // Projections need >= 3 dims.
    const std::vector<double> joint =
        ScoreStandardized(lof, d.dataset, relevant);
    for (int p : d.dataset.outlier_indices()) {
      const auto& rel = d.ground_truth.RelevantFor(p);
      if (std::find(rel.begin(), rel.end(), relevant) == rel.end()) continue;
      EXPECT_GT(joint[p], 3.0) << "outlier not visible in " +
                                      relevant.ToString();
      // Drop each single feature in turn: at least one (m-1)-projection
      // must mask the outlier (the prefix-only projection is a copy of a
      // donor inlier), i.e. score far below the joint score and below the
      // "clearly outlying" band.
      double min_projected = 1e9;
      for (FeatureId f : relevant.features()) {
        std::vector<FeatureId> reduced;
        for (FeatureId g : relevant.features()) {
          if (g != f) reduced.push_back(g);
        }
        const std::vector<double> projected =
            ScoreStandardized(lof, d.dataset, Subspace(reduced));
        min_projected = std::min(min_projected, projected[p]);
      }
      EXPECT_LT(min_projected, 3.0)
          << "outlier of " + relevant.ToString() +
                 " visible in every projection";
      EXPECT_LT(min_projected, joint[p] - 1.5)
          << "projection not substantially masked vs " +
                 relevant.ToString();
    }
  }
}

TEST(HicsGeneratorTest, OutliersVisibleInAugmentedSubspaces) {
  const SyntheticDataset d = GenerateHicsDataset(SmallConfig());
  const Lof lof(15);
  // Augment each relevant subspace with one foreign feature: the planted
  // outliers must still stand out (§3.2 property iv).
  for (const Subspace& relevant : d.relevant_subspaces) {
    FeatureId extra = 0;
    while (relevant.Contains(extra)) ++extra;
    const Subspace augmented = relevant.With(extra);
    const std::vector<double> scores =
        ScoreStandardized(lof, d.dataset, augmented);
    for (int p : d.dataset.outlier_indices()) {
      const auto& rel = d.ground_truth.RelevantFor(p);
      if (std::find(rel.begin(), rel.end(), relevant) == rel.end()) continue;
      EXPECT_GT(scores[p], 2.0)
          << "outlier lost in augmentation " + augmented.ToString();
    }
  }
}

TEST(PaperHicsSuiteTest, PublishedShapes) {
  const std::vector<SyntheticDataset> suite = GeneratePaperHicsSuite(7, 1.0);
  ASSERT_EQ(suite.size(), 5u);
  const std::vector<std::size_t> dims = {14, 23, 39, 70, 100};
  const std::vector<std::size_t> outliers = {20, 34, 59, 100, 143};
  const std::vector<std::size_t> subspaces = {4, 7, 12, 22, 31};
  for (std::size_t i = 0; i < suite.size(); ++i) {
    EXPECT_EQ(suite[i].dataset.num_features(), dims[i]);
    EXPECT_EQ(suite[i].dataset.num_points(), 1000u);
    EXPECT_EQ(suite[i].dataset.outlier_indices().size(), outliers[i]);
    EXPECT_EQ(suite[i].relevant_subspaces.size(), subspaces[i]);
  }
}

TEST(PaperHicsSuiteTest, ScaleShrinksPoints) {
  const std::vector<SyntheticDataset> suite = GeneratePaperHicsSuite(7, 0.3);
  EXPECT_EQ(suite[0].dataset.num_points(), 300u);
}

TEST(FullSpaceGeneratorTest, ShapeAndContamination) {
  FullSpaceGeneratorConfig config;
  config.num_points = 200;
  config.num_features = 12;
  config.num_outliers = 20;
  config.seed = 3;
  const SyntheticDataset d = GenerateFullSpaceDataset(config);
  EXPECT_EQ(d.dataset.num_points(), 200u);
  EXPECT_EQ(d.dataset.num_features(), 12u);
  EXPECT_EQ(d.dataset.outlier_indices().size(), 20u);
  EXPECT_TRUE(d.ground_truth.empty());  // Built downstream.
}

TEST(FullSpaceGeneratorTest, OutliersVisibleInFullSpaceAndProjections) {
  FullSpaceGeneratorConfig config;
  config.num_points = 200;
  config.num_features = 10;
  config.num_outliers = 20;
  config.seed = 5;
  const SyntheticDataset d = GenerateFullSpaceDataset(config);
  const Lof lof(15);

  // Full space: every outlier index must land in LOF's top-20.
  const std::vector<double> full = lof.Score(d.dataset, Subspace());
  const std::vector<int> top = TopKIndices(full, 20);
  for (int p : d.dataset.outlier_indices()) {
    EXPECT_NE(std::find(top.begin(), top.end(), p), top.end())
        << "outlier " << p << " not in LOF top-20 in the full space";
  }

  // Projections: standardized scores stay clearly elevated in a 2d view.
  const std::vector<double> projected =
      ScoreStandardized(lof, d.dataset, Subspace({0, 1}));
  int visible = 0;
  for (int p : d.dataset.outlier_indices()) {
    if (projected[p] > 1.0) ++visible;
  }
  EXPECT_GE(visible, 16);  // >= 80% of the outliers.
}

TEST(PaperRealSuiteTest, PublishedShapes) {
  const std::vector<SyntheticDataset> suite = GeneratePaperRealSuite(7, 1.0);
  ASSERT_EQ(suite.size(), 3u);
  EXPECT_EQ(suite[0].name, "breast_like");
  EXPECT_EQ(suite[0].dataset.num_points(), 198u);
  EXPECT_EQ(suite[0].dataset.num_features(), 31u);
  EXPECT_EQ(suite[0].dataset.outlier_indices().size(), 20u);
  EXPECT_EQ(suite[1].dataset.num_points(), 569u);
  EXPECT_EQ(suite[1].dataset.num_features(), 30u);
  EXPECT_EQ(suite[1].dataset.outlier_indices().size(), 57u);
  EXPECT_EQ(suite[2].dataset.num_points(), 1205u);
  EXPECT_EQ(suite[2].dataset.num_features(), 23u);
  EXPECT_EQ(suite[2].dataset.outlier_indices().size(), 121u);
}

TEST(Figure1Test, GroundTruthAsDocumented) {
  const SyntheticDataset d = GenerateFigure1Dataset(1, 200);
  EXPECT_EQ(d.dataset.num_features(), 3u);
  EXPECT_EQ(d.dataset.outlier_indices(), (std::vector<int>{0, 1}));
  ASSERT_EQ(d.ground_truth.RelevantFor(0).size(), 1u);
  EXPECT_EQ(d.ground_truth.RelevantFor(0).front(), Subspace({0, 1}));
  EXPECT_EQ(d.ground_truth.RelevantFor(1).front(), Subspace({1, 2}));
}

TEST(Figure1Test, PlantedDeviationsMatchStory) {
  const SyntheticDataset d = GenerateFigure1Dataset(1, 200);
  const Lof lof(15);
  const std::vector<double> s01 =
      ScoreStandardized(lof, d.dataset, Subspace({0, 1}));
  const std::vector<double> s12 =
      ScoreStandardized(lof, d.dataset, Subspace({1, 2}));
  // o1 deviates in {F0,F1}; o2 does not.
  EXPECT_GT(s01[0], 3.0);
  EXPECT_LT(s01[1], 2.0);
  // o2 deviates in {F1,F2}.
  EXPECT_GT(s12[1], 3.0);
}

}  // namespace
}  // namespace subex
