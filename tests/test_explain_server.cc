#include "net/explain_server.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "data/generators.h"
#include "detect/isolation_forest.h"
#include "detect/lof.h"
#include "explain/beam.h"
#include "explain/refout.h"
#include "net/explain_client.h"
#include "prof/sampling_profiler.h"
#include "subspace/enumeration.h"

namespace subex {
namespace {

SyntheticDataset SmallHics(std::uint64_t seed = 77) {
  HicsGeneratorConfig config;
  config.num_points = 150;
  config.subspace_dims = {2, 2, 3};  // 7 features.
  config.seed = seed;
  return GenerateHicsDataset(config);
}

/// Blocks every `Score` call while the gate is closed — makes "a request
/// is in flight right now" a deterministic state instead of a race.
class GateDetector : public Detector {
 public:
  GateDetector(const Detector& inner, std::atomic<bool>* gate)
      : inner_(inner), gate_(gate) {}
  std::string name() const override { return inner_.name(); }
  std::vector<double> Score(const Dataset& data,
                            const Subspace& subspace) const override {
    while (!gate_->load(std::memory_order_acquire)) {
      std::this_thread::yield();
    }
    return inner_.Score(data, subspace);
  }

 private:
  const Detector& inner_;
  std::atomic<bool>* gate_;
};

/// Polls `predicate` until true or the deadline passes.
bool WaitFor(const std::function<bool()>& predicate, int timeout_ms = 5000) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  while (std::chrono::steady_clock::now() < deadline) {
    if (predicate()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return predicate();
}

/// One dataset + LOF/iForest services + Beam/RefOut explainers behind a
/// started server, the fixture most tests share.
class ExplainServerTest : public ::testing::Test {
 protected:
  void StartServer(const ExplainServerOptions& options = {},
                   std::size_t pool_threads = 2) {
    pool_ = std::make_unique<ThreadPool>(pool_threads);
    lof_service_ =
        std::make_unique<ScoringService>(lof_, data_.dataset,
                                         ScoringServiceOptions{}, pool_.get());
    forest_service_ =
        std::make_unique<ScoringService>(forest_, data_.dataset,
                                         ScoringServiceOptions{}, pool_.get());
    server_ = std::make_unique<ExplainServer>(options, pool_.get());
    server_->RegisterService(*lof_service_);
    server_->RegisterService(*forest_service_);
    server_->RegisterExplainer("Beam", beam_);
    server_->RegisterExplainer("RefOut", refout_);
    std::string error;
    ASSERT_TRUE(server_->Start(&error)) << error;
  }

  ExplainClient MakeClient(ExplainClientOptions options = {}) {
    ExplainClient client(options);
    std::string error;
    EXPECT_TRUE(client.Connect("127.0.0.1", server_->port(), &error)) << error;
    return client;
  }

  SyntheticDataset data_ = SmallHics();
  Lof lof_{15};
  IsolationForest forest_{[] {
    IsolationForest::Options options;
    options.num_trees = 20;
    options.num_repetitions = 2;
    return options;
  }()};
  Beam beam_;
  RefOut refout_;
  std::unique_ptr<ThreadPool> pool_;
  std::unique_ptr<ScoringService> lof_service_;
  std::unique_ptr<ScoringService> forest_service_;
  std::unique_ptr<ExplainServer> server_;
};

TEST_F(ExplainServerTest, StartBindsEphemeralPortAndStopIsIdempotent) {
  StartServer();
  EXPECT_TRUE(server_->running());
  EXPECT_NE(server_->port(), 0);
  server_->Stop();
  EXPECT_FALSE(server_->running());
  server_->Stop();  // Second Stop is a no-op.
}

TEST_F(ExplainServerTest, ScoreMatchesInProcessBitwise) {
  StartServer();
  ExplainClient client = MakeClient();
  for (const Subspace& s : EnumerateSubspaces(7, 2)) {
    const ExplainClient::ScoreReply reply = client.Score("LOF", s);
    ASSERT_TRUE(reply.ok()) << reply.error;
    EXPECT_EQ(reply.scores, ScoreStandardized(lof_, data_.dataset, s))
        << s.ToString();
  }
  // Stochastic detector: seeded per subspace, so served == direct too.
  const Subspace s({1, 4, 6});
  const ExplainClient::ScoreReply reply = client.Score("iForest", s);
  ASSERT_TRUE(reply.ok()) << reply.error;
  EXPECT_EQ(reply.scores, ScoreStandardized(forest_, data_.dataset, s));
}

TEST_F(ExplainServerTest, ExplainMatchesInProcessBitwise) {
  StartServer();
  ExplainClient client = MakeClient();
  const int point = data_.dataset.outlier_indices().front();
  const RankedSubspaces direct = beam_.Explain(data_.dataset, lof_, point, 2);
  const ExplainClient::ExplainReply reply =
      client.Explain("LOF", "Beam", point, 2);
  ASSERT_TRUE(reply.ok()) << reply.error;
  EXPECT_EQ(reply.ranking.subspaces, direct.subspaces);
  EXPECT_EQ(reply.ranking.scores, direct.scores);
}

TEST_F(ExplainServerTest, ExplainTruncatesToMaxResults) {
  StartServer();
  ExplainClient client = MakeClient();
  const int point = data_.dataset.outlier_indices().front();
  const ExplainClient::ExplainReply reply =
      client.Explain("LOF", "Beam", point, 2, /*max_results=*/3);
  ASSERT_TRUE(reply.ok()) << reply.error;
  EXPECT_EQ(reply.ranking.size(), 3u);
  const RankedSubspaces direct = beam_.Explain(data_.dataset, lof_, point, 2);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(reply.ranking.subspaces[i], direct.subspaces[i]);
  }
}

TEST_F(ExplainServerTest, StatsEndpointReportsServerAndServiceCounters) {
  StartServer();
  ExplainClient client = MakeClient();
  ASSERT_TRUE(client.Score("LOF", Subspace({0, 1})).ok());
  const ExplainClient::StatsReply reply = client.Stats();
  ASSERT_TRUE(reply.ok()) << reply.error;
  EXPECT_NE(reply.json.find("\"server\""), std::string::npos);
  EXPECT_NE(reply.json.find("\"services\""), std::string::npos);
  EXPECT_NE(reply.json.find("\"LOF\""), std::string::npos);
  EXPECT_NE(reply.json.find("\"iForest\""), std::string::npos);
  EXPECT_NE(reply.json.find("\"requests_admitted\""), std::string::npos);
  EXPECT_NE(reply.json.find("\"hit_rate\""), std::string::npos);
}

#ifndef SUBEX_OBS_DISABLED
TEST_F(ExplainServerTest, StatsEndpointCarriesLatencyHistograms) {
  StartServer();
  ExplainClient client = MakeClient();
  // The score round trip feeds serve.request (end-to-end, recorded by the
  // server) and detect.score (compute time, recorded by the service).
  ASSERT_TRUE(client.Score("LOF", Subspace({0, 1})).ok());
  const ExplainClient::StatsReply reply = client.Stats();
  ASSERT_TRUE(reply.ok()) << reply.error;
  EXPECT_NE(reply.json.find("\"metrics\""), std::string::npos);
  EXPECT_NE(reply.json.find("\"histograms\""), std::string::npos);
  EXPECT_NE(reply.json.find("\"serve.request\""), std::string::npos);
  EXPECT_NE(reply.json.find("\"serve.queue_wait\""), std::string::npos);
  EXPECT_NE(reply.json.find("\"detect.score\""), std::string::npos);
  EXPECT_NE(reply.json.find("\"p50_ms\""), std::string::npos);
  EXPECT_NE(reply.json.find("\"p90_ms\""), std::string::npos);
  EXPECT_NE(reply.json.find("\"p99_ms\""), std::string::npos);
  // Byte counters and the connection gauge ride along in the registry.
  EXPECT_NE(reply.json.find("\"net.bytes_received\""), std::string::npos);
  EXPECT_NE(reply.json.find("\"serve.connections\""), std::string::npos);
}
#endif  // SUBEX_OBS_DISABLED

TEST_F(ExplainServerTest, InvalidRequestsGetErrorRepliesNotDisconnects) {
  StartServer();
  ExplainClient client = MakeClient();

  ExplainClient::ScoreReply score = client.Score("NoSuch", Subspace({0, 1}));
  EXPECT_EQ(score.status, ClientStatus::kServerError);
  EXPECT_NE(score.error.find("unknown detector"), std::string::npos);

  score = client.Score("LOF", Subspace({0, 99}));
  EXPECT_EQ(score.status, ClientStatus::kServerError);
  EXPECT_NE(score.error.find("out of range"), std::string::npos);

  ExplainClient::ExplainReply explain =
      client.Explain("LOF", "NoSuch", 0, 2);
  EXPECT_EQ(explain.status, ClientStatus::kServerError);
  EXPECT_NE(explain.error.find("unknown explainer"), std::string::npos);

  explain = client.Explain("LOF", "Beam", -1, 2);
  EXPECT_EQ(explain.status, ClientStatus::kServerError);
  explain = client.Explain("LOF", "Beam", 0, 1);
  EXPECT_EQ(explain.status, ClientStatus::kServerError);

  // The connection survived all five rejections.
  EXPECT_TRUE(client.Score("LOF", Subspace({0, 1})).ok());
}

TEST_F(ExplainServerTest, InlineModeWithoutPoolServesRequests) {
  // pool == nullptr runs handlers on the event-loop thread.
  lof_service_ = std::make_unique<ScoringService>(lof_, data_.dataset);
  server_ = std::make_unique<ExplainServer>(ExplainServerOptions{}, nullptr);
  server_->RegisterService(*lof_service_);
  std::string error;
  ASSERT_TRUE(server_->Start(&error)) << error;
  ExplainClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server_->port(), &error)) << error;
  const Subspace s({2, 5});
  const ExplainClient::ScoreReply reply = client.Score("LOF", s);
  ASSERT_TRUE(reply.ok()) << reply.error;
  EXPECT_EQ(reply.scores, ScoreStandardized(lof_, data_.dataset, s));
}

// The acceptance-criterion test: N concurrent clients, mixed kScore and
// kExplain, every result bitwise identical to the direct in-process call.
TEST_F(ExplainServerTest, ConcurrentMixedClientsMatchInProcessBitwise) {
  StartServer(ExplainServerOptions{}, /*pool_threads=*/3);
  const std::vector<Subspace> subspaces = EnumerateSubspaces(7, 2);
  std::vector<std::vector<double>> expected_scores;
  for (const Subspace& s : subspaces) {
    expected_scores.push_back(ScoreStandardized(lof_, data_.dataset, s));
  }
  const int point = data_.dataset.outlier_indices().front();
  const RankedSubspaces expected_ranking =
      beam_.Explain(data_.dataset, lof_, point, 2);

  constexpr int kClients = 4;
  constexpr int kRequestsPerClient = 30;
  std::atomic<int> mismatches{0};
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kClients; ++t) {
    threads.emplace_back([&, t] {
      ExplainClient client;
      std::string error;
      if (!client.Connect("127.0.0.1", server_->port(), &error)) {
        failures.fetch_add(1);
        return;
      }
      for (int r = 0; r < kRequestsPerClient; ++r) {
        if (r % 10 == 9) {
          const ExplainClient::ExplainReply reply =
              client.Explain("LOF", "Beam", point, 2);
          if (!reply.ok()) {
            failures.fetch_add(1);
          } else if (reply.ranking.subspaces != expected_ranking.subspaces ||
                     reply.ranking.scores != expected_ranking.scores) {
            mismatches.fetch_add(1);
          }
        } else {
          const std::size_t i = (r + t * 7) % subspaces.size();
          const ExplainClient::ScoreReply reply =
              client.Score("LOF", subspaces[i]);
          if (!reply.ok()) {
            failures.fetch_add(1);
          } else if (reply.scores != expected_scores[i]) {
            mismatches.fetch_add(1);
          }
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(mismatches.load(), 0)
      << "served results must be bitwise identical to in-process calls";
  const std::uint64_t expected =
      static_cast<std::uint64_t>(kClients) * kRequestsPerClient;
  EXPECT_EQ(server_->stats().requests_admitted, expected);
  // The loop thread increments responses_sent just after the final send(),
  // so a client can observe its reply marginally before the counter.
  EXPECT_TRUE(
      WaitFor([&] { return server_->stats().responses_sent == expected; }));
  EXPECT_EQ(server_->stats().protocol_errors, 0u);
}

TEST_F(ExplainServerTest, FullQueueRepliesBusyImmediately) {
  std::atomic<bool> gate{false};
  GateDetector gated(lof_, &gate);
  pool_ = std::make_unique<ThreadPool>(2);
  ScoringServiceOptions no_cache;
  no_cache.enable_cache = false;
  ScoringService service(gated, data_.dataset, no_cache, pool_.get());
  ExplainServerOptions options;
  options.queue_capacity = 1;  // One admitted request fills the queue.
  server_ = std::make_unique<ExplainServer>(options, pool_.get());
  server_->RegisterService(service);
  std::string error;
  ASSERT_TRUE(server_->Start(&error)) << error;

  // Client A's request is admitted, then blocks on the gate.
  const Subspace s1({0, 1});
  std::thread blocked([&] {
    ExplainClient client;
    std::string connect_error;
    ASSERT_TRUE(client.Connect("127.0.0.1", server_->port(), &connect_error));
    const ExplainClient::ScoreReply reply = client.Score("LOF", s1);
    EXPECT_TRUE(reply.ok()) << reply.error;
    EXPECT_EQ(reply.scores, ScoreStandardized(lof_, data_.dataset, s1));
  });
  ASSERT_TRUE(
      WaitFor([&] { return server_->stats().requests_admitted == 1; }));

  // Client B is rejected instantly: no retries configured.
  ExplainClientOptions no_retry;
  no_retry.max_busy_retries = 0;
  ExplainClient rejected = MakeClient(no_retry);
  const ExplainClient::ScoreReply busy = rejected.Score("LOF", Subspace({2, 3}));
  EXPECT_EQ(busy.status, ClientStatus::kBusy);
  EXPECT_GE(server_->stats().busy_rejections, 1u);

  // With retries, the same request succeeds once the gate opens.
  gate.store(true, std::memory_order_release);
  blocked.join();
  ExplainClientOptions with_retry;
  with_retry.max_busy_retries = 20;
  ExplainClient retrying = MakeClient(with_retry);
  const Subspace s2({2, 3});
  const ExplainClient::ScoreReply reply = retrying.Score("LOF", s2);
  ASSERT_TRUE(reply.ok()) << reply.error;
  EXPECT_EQ(reply.scores, ScoreStandardized(lof_, data_.dataset, s2));
}

TEST_F(ExplainServerTest, GracefulShutdownDrainsInFlightRequests) {
  std::atomic<bool> gate{false};
  GateDetector gated(lof_, &gate);
  pool_ = std::make_unique<ThreadPool>(2);
  ScoringService service(gated, data_.dataset, ScoringServiceOptions{},
                         pool_.get());
  server_ = std::make_unique<ExplainServer>(ExplainServerOptions{},
                                            pool_.get());
  server_->RegisterService(service);
  std::string error;
  ASSERT_TRUE(server_->Start(&error)) << error;

  const Subspace s({3, 4});
  std::thread requester([&] {
    ExplainClient client;
    std::string connect_error;
    ASSERT_TRUE(client.Connect("127.0.0.1", server_->port(), &connect_error));
    const ExplainClient::ScoreReply reply = client.Score("LOF", s);
    // The in-flight request must complete with the real result, not an
    // aborted connection.
    ASSERT_TRUE(reply.ok()) << reply.error;
    EXPECT_EQ(reply.scores, ScoreStandardized(lof_, data_.dataset, s));
  });
  ASSERT_TRUE(
      WaitFor([&] { return server_->stats().requests_admitted == 1; }));

  std::thread releaser([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    gate.store(true, std::memory_order_release);
  });
  server_->Stop();  // Must block until the response above is flushed.
  EXPECT_FALSE(server_->running());
  requester.join();
  releaser.join();
  const ServerStatsSnapshot stats = server_->stats();
  EXPECT_EQ(stats.requests_admitted, 1u);
  EXPECT_EQ(stats.responses_sent, 1u);
}

TEST_F(ExplainServerTest, OversizedFrameClosesConnection) {
  StartServer();
  std::string error;
  Socket raw = ConnectTcp("127.0.0.1", server_->port(), 2000, &error);
  ASSERT_TRUE(raw.valid()) << error;
  // Length prefix far above max_frame_bytes: unrecoverable protocol error.
  const std::uint8_t huge[4] = {0xFF, 0xFF, 0xFF, 0x7F};
  ASSERT_TRUE(SendAll(raw.fd(), huge, sizeof(huge), 1000, &error)) << error;
  // The server answers kError and closes; eventually we observe EOF.
  std::uint8_t buf[256];
  bool saw_eof = false;
  for (int i = 0; i < 100 && !saw_eof; ++i) {
    std::size_t received = 0;
    if (!RecvSome(raw.fd(), buf, sizeof(buf), 100, &received, &error)) break;
    if (received == 0) saw_eof = true;
  }
  EXPECT_TRUE(saw_eof);
  EXPECT_TRUE(WaitFor([&] { return server_->stats().protocol_errors >= 1; }));
}

TEST_F(ExplainServerTest, IdleConnectionsAreTimedOut) {
  ExplainServerOptions options;
  options.idle_timeout_ms = 50;
  StartServer(options);
  ExplainClient client = MakeClient();
  ASSERT_TRUE(client.Score("LOF", Subspace({0, 1})).ok());
  EXPECT_TRUE(WaitFor([&] { return server_->stats().timeouts >= 1; }))
      << "an idle connection should be reaped";
}

TEST_F(ExplainServerTest, MalformedTraceHeaderGetsErrorNotCrash) {
  StartServer();
  std::string error;
  Socket raw = ConnectTcp("127.0.0.1", server_->port(), 2000, &error);
  ASSERT_TRUE(raw.valid()) << error;
  // A 10-byte kScore header with the trace flag set but no trace id bytes:
  // the header decoder must reject it (sticky reader error), the server
  // must answer kError and close — never read past the frame.
  WireWriter writer;
  writer.PutU8(kProtocolVersion);
  writer.PutU8(static_cast<std::uint8_t>(MessageType::kScore) | kTraceIdFlag);
  writer.PutU64(1);
  const std::vector<std::uint8_t> frame = EncodeFrame(writer.bytes());
  ASSERT_TRUE(SendAll(raw.fd(), frame.data(), frame.size(), 1000, &error))
      << error;
  std::uint8_t buf[256];
  bool saw_eof = false;
  for (int i = 0; i < 100 && !saw_eof; ++i) {
    std::size_t received = 0;
    if (!RecvSome(raw.fd(), buf, sizeof(buf), 100, &received, &error)) break;
    if (received == 0) saw_eof = true;
  }
  EXPECT_TRUE(saw_eof);
  EXPECT_TRUE(WaitFor([&] { return server_->stats().protocol_errors >= 1; }));
  // The server survived: a well-formed client still gets served.
  ExplainClient client = MakeClient();
  EXPECT_TRUE(client.Score("LOF", Subspace({0, 1})).ok());
}

/// Scrapes `GET path` from the server's HTTP metrics listener and returns
/// the raw response (empty on connect failure).
std::string HttpGet(std::uint16_t port, const std::string& path) {
  std::string error;
  Socket sock = ConnectTcp("127.0.0.1", port, 2000, &error);
  if (!sock.valid()) return "";
  const std::string request =
      "GET " + path + " HTTP/1.1\r\nHost: localhost\r\n\r\n";
  if (!SendAll(sock.fd(), reinterpret_cast<const std::uint8_t*>(request.data()),
               request.size(), 1000, &error)) {
    return "";
  }
  std::string response;
  std::uint8_t buf[4096];
  for (int i = 0; i < 100; ++i) {
    std::size_t received = 0;
    if (!RecvSome(sock.fd(), buf, sizeof(buf), 500, &received, &error)) break;
    if (received == 0) break;  // Connection: close.
    response.append(reinterpret_cast<const char*>(buf), received);
  }
  return response;
}

TEST_F(ExplainServerTest, MetricsEndpointServesPrometheusText) {
  ExplainServerOptions options;
  options.metrics_port = 0;  // Ephemeral.
  StartServer(options);
  ASSERT_NE(server_->metrics_port(), 0);

  ExplainClient client = MakeClient();
  ASSERT_TRUE(client.Score("LOF", Subspace({0, 1})).ok());

  const std::string response = HttpGet(server_->metrics_port(), "/metrics");
#ifndef SUBEX_OBS_DISABLED
  EXPECT_NE(response.find("HTTP/1.1 200 OK"), std::string::npos) << response;
  EXPECT_NE(response.find("text/plain; version=0.0.4"), std::string::npos);
  EXPECT_NE(response.find("subex_serve_request_seconds_count"),
            std::string::npos);
  EXPECT_NE(response.find("subex_server_uptime_seconds"), std::string::npos);
#else
  EXPECT_NE(response.find("HTTP/1.1 503"), std::string::npos) << response;
#endif

  // Unknown paths 404, non-GET methods 405; both leave the server healthy.
  EXPECT_NE(HttpGet(server_->metrics_port(), "/nope").find("404"),
            std::string::npos);
  EXPECT_TRUE(client.Score("LOF", Subspace({0, 2})).ok());
}

TEST_F(ExplainServerTest, StatsCarriesUptimeAndBuildInfo) {
  StartServer();
  ExplainClient client = MakeClient();
  const ExplainClient::StatsReply reply = client.Stats();
  ASSERT_TRUE(reply.ok()) << reply.error;
  EXPECT_NE(reply.json.find("\"uptime_seconds\""), std::string::npos);
  EXPECT_NE(reply.json.find("\"build_info\""), std::string::npos);
  EXPECT_NE(reply.json.find("\"obs_enabled\""), std::string::npos);
  EXPECT_NE(reply.json.find("\"events\""), std::string::npos);
}

#ifndef SUBEX_OBS_DISABLED

/// Formats an id the way the exporters do ("0x%016llx").
std::string HexId(std::uint64_t id) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "0x%016llx",
                static_cast<unsigned long long>(id));
  return buf;
}

// The tentpole acceptance test: a client-generated trace id propagates over
// the wire and reappears verbatim in the server's Chrome-trace export, on
// spans covering the whole server-side pipeline.
TEST_F(ExplainServerTest, ClientTraceIdSurfacesInTraceDump) {
  StartServer();
  ExplainClient client = MakeClient();
  ASSERT_TRUE(client.Score("LOF", Subspace({0, 1})).ok());
  const std::uint64_t trace_id = client.last_trace_id();
  ASSERT_NE(trace_id, 0u);

  const ExplainClient::TraceDumpReply dump = client.TraceDump();
  ASSERT_TRUE(dump.ok()) << dump.error;
  EXPECT_NE(dump.json.find("\"displayTimeUnit\":\"ms\""), std::string::npos);
  EXPECT_NE(dump.json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(dump.json.find(HexId(trace_id)), std::string::npos)
      << "client trace id " << HexId(trace_id)
      << " missing from server export";
  // The request's server-side stages are all present.
  EXPECT_NE(dump.json.find("\"serve.request\""), std::string::npos);
  EXPECT_NE(dump.json.find("\"serve.queue_wait\""), std::string::npos);
  EXPECT_NE(dump.json.find("\"detect.score\""), std::string::npos);
  EXPECT_NE(dump.json.find("\"net.write\""), std::string::npos);
}

TEST_F(ExplainServerTest, TraceDumpWithClearResetsTheCollector) {
  StartServer();
  ExplainClient client = MakeClient();
  ASSERT_TRUE(client.Score("LOF", Subspace({0, 1})).ok());
  const std::uint64_t first_id = client.last_trace_id();
  ASSERT_TRUE(client.TraceDump(/*clear=*/true).ok());

  ASSERT_TRUE(client.Score("LOF", Subspace({0, 2})).ok());
  const std::uint64_t second_id = client.last_trace_id();
  const ExplainClient::TraceDumpReply dump = client.TraceDump();
  ASSERT_TRUE(dump.ok()) << dump.error;
  EXPECT_EQ(dump.json.find(HexId(first_id)), std::string::npos)
      << "cleared spans must not reappear";
  EXPECT_NE(dump.json.find(HexId(second_id)), std::string::npos);
}

TEST_F(ExplainServerTest, DistinctRequestsGetDistinctTraceIds) {
  // Per-connection Trace objects are pooled and reused; ids must not leak
  // from one request into the next.
  StartServer();
  ExplainClient client = MakeClient();
  ASSERT_TRUE(client.Score("LOF", Subspace({0, 1})).ok());
  const std::uint64_t first = client.last_trace_id();
  ASSERT_TRUE(client.Score("LOF", Subspace({0, 2})).ok());
  const std::uint64_t second = client.last_trace_id();
  EXPECT_NE(first, second);
  const ExplainClient::TraceDumpReply dump = client.TraceDump();
  ASSERT_TRUE(dump.ok());
  EXPECT_NE(dump.json.find(HexId(first)), std::string::npos);
  EXPECT_NE(dump.json.find(HexId(second)), std::string::npos);
}

TEST_F(ExplainServerTest, UntracedClientsStillGetServerSideSpans) {
  StartServer();
  ExplainClientOptions no_tracing;
  no_tracing.enable_tracing = false;
  ExplainClient client = MakeClient(no_tracing);
  ASSERT_TRUE(client.Score("LOF", Subspace({0, 1})).ok());
  EXPECT_EQ(client.last_trace_id(), 0u);
  // The server assigns its own trace id when the wire header carries none.
  const ExplainClient::TraceDumpReply dump = client.TraceDump();
  ASSERT_TRUE(dump.ok()) << dump.error;
  EXPECT_NE(dump.json.find("\"serve.request\""), std::string::npos);
}

TEST_F(ExplainServerTest, SlowRequestsRetainTheirSpanBreakdown) {
  ExplainServerOptions options;
  options.slow_request_threshold_ms = 0.000001;  // Everything is "slow".
  StartServer(options);
  ExplainClient client = MakeClient();
  ASSERT_TRUE(client.Score("LOF", Subspace({0, 1})).ok());
  const ExplainClient::StatsReply reply = client.Stats();
  ASSERT_TRUE(reply.ok()) << reply.error;
  EXPECT_NE(reply.json.find("\"slow_requests\""), std::string::npos);
  EXPECT_NE(reply.json.find("\"label\":\"score\""), std::string::npos);
  EXPECT_NE(reply.json.find("\"spans\""), std::string::npos);
}

TEST_F(ExplainServerTest, IdleTimeoutEmitsAStructuredEvent) {
  ExplainServerOptions options;
  options.idle_timeout_ms = 50;
  StartServer(options);
  ExplainClient client = MakeClient();
  ASSERT_TRUE(client.Score("LOF", Subspace({0, 1})).ok());
  // Leave the connection open and idle so the sweep reaps it.
  ASSERT_TRUE(WaitFor([&] { return server_->stats().timeouts >= 1; }));
  ExplainClient prober = MakeClient();
  const ExplainClient::StatsReply reply = prober.Stats();
  ASSERT_TRUE(reply.ok()) << reply.error;
  EXPECT_NE(reply.json.find("serve.idle_timeout"), std::string::npos);
}

// The kProfDump acceptance loop: start the sampler over the wire, drive
// scoring load, and expect the dumped flamegraph to name the detector
// kernels that actually ran.
TEST_F(ExplainServerTest, ProfDumpRoundTripCapturesDetectorKernelFrames) {
  if (!SamplingProfiler::SupportedOnThisSystem()) {
    GTEST_SKIP() << "per-thread SIGPROF timers unavailable here";
  }
  SamplingProfiler::Global().Clear();
  StartServer();
  ExplainClient client = MakeClient();

  const ExplainClient::ProfDumpReply started = client.ProfStart(997);
  ASSERT_TRUE(started.ok()) << started.error;
  EXPECT_NE(started.text.find("\"running\":true"), std::string::npos)
      << started.text;

  // Distinct subspaces miss the score cache, so every request runs
  // Lof::Score on a pool worker the profiler's sweep (or the thread
  // hooks) attached. Keep scoring until enough wall time accumulated.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (SamplingProfiler::Global().samples() < 25 &&
         std::chrono::steady_clock::now() < deadline) {
    for (const Subspace& subspace :
         EnumerateSubspaces(static_cast<int>(data_.dataset.num_features()),
                            3)) {
      ASSERT_TRUE(client.Score("LOF", subspace).ok());
    }
    lof_.Score(data_.dataset, Subspace({0, 1, 2}));  // In-process burn too.
  }

  const ExplainClient::ProfDumpReply dump = client.ProfDump(/*clear=*/false);
  ASSERT_TRUE(dump.ok()) << dump.error;
  ASSERT_FALSE(dump.text.empty());
  EXPECT_NE(dump.text.find(';'), std::string::npos);
  EXPECT_NE(dump.text.find("Lof::Score"), std::string::npos)
      << dump.text.substr(0, 2000);

  const ExplainClient::ProfDumpReply stopped = client.ProfStop();
  ASSERT_TRUE(stopped.ok()) << stopped.error;
  EXPECT_NE(stopped.text.find("\"running\":false"), std::string::npos);
  EXPECT_FALSE(SamplingProfiler::Global().running());
  SamplingProfiler::Global().Clear();
}

TEST_F(ExplainServerTest, ProfDumpWhenSamplerUnsupportedStillReplies) {
  // Without a prior Start the dump is empty text, never an error — the
  // endpoint is safe to poke unconditionally from dashboards.
  StartServer();
  ExplainClient client = MakeClient();
  const ExplainClient::ProfDumpReply dump = client.ProfDump();
  ASSERT_TRUE(dump.ok()) << dump.error;
  EXPECT_TRUE(dump.text.empty());
  const ExplainClient::ProfDumpReply stopped = client.ProfStop();
  ASSERT_TRUE(stopped.ok()) << stopped.error;
  EXPECT_NE(stopped.text.find("\"running\":false"), std::string::npos);
}

#endif  // SUBEX_OBS_DISABLED

TEST(ServerStatsSnapshotTest, ToJsonContainsEveryCounter) {
  ServerStatsSnapshot snap;
  snap.connections_accepted = 3;
  snap.busy_rejections = 7;
  const std::string json = snap.ToJson();
  EXPECT_NE(json.find("\"connections_accepted\":3"), std::string::npos);
  EXPECT_NE(json.find("\"busy_rejections\":7"), std::string::npos);
  EXPECT_NE(json.find("\"timeouts\":0"), std::string::npos);
}

}  // namespace
}  // namespace subex
