// Memory governance under injected admission/reservation failures and
// concurrency: dropped inserts must never corrupt the byte accounting —
// after the dust settles, cache bytes and manager charges agree exactly.
// The TSan CI lane runs these to prove the fault paths are race-free.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "fault/fault.h"
#include "mem/eviction_manager.h"
#include "serve/score_cache.h"

namespace subex {
namespace {

ScoreKey KeyFor(int i) {
  return ScoreKey{"det" + std::to_string(i % 3),
                  Subspace({i % 7, 7 + i % 5})};
}

ScoreVectorPtr VectorOf(std::size_t n, double fill) {
  return std::make_shared<const std::vector<double>>(n, fill);
}

TEST(MemFaults, InjectedReserveFailureDropsInsertWithoutCharging) {
  EvictionManager manager(EvictionManagerOptions{1 << 20});
  ScoreCacheOptions options;
  options.num_shards = 1;
  options.manager = &manager;
  options.name = "faulted";
  ScoreCache cache(options);

  FaultControl control;
  FaultRule fail;
  fail.limit = 1;
  control.Arm(FaultPoint::kMemReserve, fail);

  cache.Put(KeyFor(0), VectorOf(64, 1.0));  // Injection: dropped.
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.bytes(), 0u);
  EXPECT_EQ(manager.used_bytes(), 0u);
  EXPECT_EQ(manager.snapshot().reserve_failures, 1u);

  cache.Put(KeyFor(0), VectorOf(64, 1.0));  // Fault spent: admitted.
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(manager.used_bytes(), cache.bytes());
}

TEST(MemFaults, InjectedCacheAdmitFaultDropsTheValueOnly) {
  EvictionManager manager(EvictionManagerOptions{1 << 20});
  ScoreCacheOptions options;
  options.num_shards = 1;
  options.manager = &manager;
  ScoreCache cache(options);

  FaultControl control;
  FaultRule fail;
  fail.limit = 1;
  control.Arm(FaultPoint::kCacheAdmit, fail);

  cache.Put(KeyFor(1), VectorOf(32, 2.0));
  EXPECT_EQ(cache.Get(KeyFor(1)), nullptr);  // Best-effort: simply absent.
  EXPECT_EQ(cache.size(), 0u);
  // The drop happened before reservation, so nothing was ever charged.
  EXPECT_EQ(manager.used_bytes(), 0u);

  cache.Put(KeyFor(1), VectorOf(32, 2.0));
  ASSERT_NE(cache.Get(KeyFor(1)), nullptr);
  EXPECT_EQ(manager.used_bytes(), cache.bytes());
}

TEST(MemFaults, ConcurrentChurnUnderFaultsKeepsAccountingExact) {
  // A budget small enough to force genuine pressure-reclaim passes, plus
  // probabilistic reservation/admission faults, across several threads.
  EvictionManager manager(EvictionManagerOptions{64 * 1024});
  ScoreCacheOptions options;
  options.num_shards = 4;
  options.max_bytes = 64 * 1024;
  options.manager = &manager;
  options.name = "churn";
  ScoreCache cache(options);

  FaultControl control(/*seed=*/9);
  FaultRule sometimes;
  sometimes.probability = 0.2;
  control.Arm(FaultPoint::kMemReserve, sometimes);
  control.Arm(FaultPoint::kCacheAdmit, sometimes);

  constexpr int kThreads = 4;
  constexpr int kOpsPerThread = 2000;
  std::atomic<int> started{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      started.fetch_add(1, std::memory_order_acq_rel);
      while (started.load(std::memory_order_acquire) < kThreads) {
        std::this_thread::yield();
      }
      for (int i = 0; i < kOpsPerThread; ++i) {
        const int k = (t * kOpsPerThread + i) % 40;
        if (i % 3 == 0) {
          (void)cache.Get(KeyFor(k));
        } else {
          cache.Put(KeyFor(k), VectorOf(16 + k % 64, static_cast<double>(i)));
        }
        if (i % 500 == 499) {
          (void)cache.EvictIf(
              [&](const ScoreKey& key) { return key.detector == "det0"; });
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();

  control.Disarm(FaultPoint::kMemReserve);
  control.Disarm(FaultPoint::kCacheAdmit);

  // Quiescent: the cache's view and the manager's charge must agree to the
  // byte, and both must respect the budget.
  EXPECT_EQ(manager.used_bytes(), cache.bytes());
  EXPECT_LE(manager.used_bytes(), manager.budget_bytes());
  const EvictionManagerSnapshot snapshot = manager.snapshot();
  EXPECT_GT(snapshot.reserve_calls, 0u);
  EXPECT_GT(snapshot.reserve_failures, 0u);  // The faults really fired.

  // Clear releases everything.
  cache.Clear();
  EXPECT_EQ(cache.bytes(), 0u);
  EXPECT_EQ(manager.used_bytes(), 0u);
}

TEST(MemFaults, PressureReclaimUnderInjectedFailuresStaysConsistent) {
  // Two caches share one tight budget: cache B's inserts trigger reclaim
  // passes that evict cache A's tail, while injected reserve failures
  // randomly drop inserts on both. Accounting must survive the crossfire.
  EvictionManager manager(EvictionManagerOptions{32 * 1024});
  ScoreCacheOptions options_a;
  options_a.num_shards = 2;
  options_a.manager = &manager;
  options_a.name = "a";
  ScoreCache cache_a(options_a);
  ScoreCacheOptions options_b = options_a;
  options_b.name = "b";
  ScoreCache cache_b(options_b);

  FaultControl control(/*seed=*/31);
  FaultRule sometimes;
  sometimes.probability = 0.15;
  control.Arm(FaultPoint::kMemReserve, sometimes);

  std::thread writer_a([&] {
    for (int i = 0; i < 3000; ++i) {
      cache_a.Put(KeyFor(i % 30), VectorOf(48, 1.0));
    }
  });
  std::thread writer_b([&] {
    for (int i = 0; i < 3000; ++i) {
      cache_b.Put(KeyFor(i % 30), VectorOf(48, 2.0));
    }
  });
  writer_a.join();
  writer_b.join();
  control.Disarm(FaultPoint::kMemReserve);

  EXPECT_EQ(manager.used_bytes(), cache_a.bytes() + cache_b.bytes());
  EXPECT_LE(manager.used_bytes(), manager.budget_bytes());

  cache_a.Clear();
  cache_b.Clear();
  EXPECT_EQ(manager.used_bytes(), 0u);
}

}  // namespace
}  // namespace subex
