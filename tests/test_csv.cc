#include "data/csv.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>

#include "data/generators.h"

namespace subex {
namespace {

class CsvTest : public ::testing::Test {
 protected:
  std::string Path(const std::string& name) {
    return ::testing::TempDir() + "subex_csv_" + name;
  }

  void WriteFile(const std::string& path, const std::string& content) {
    std::ofstream out(path);
    out << content;
  }
};

TEST_F(CsvTest, RoundTripPreservesDatasetAndLabels) {
  const SyntheticDataset generated = GenerateFigure1Dataset(1, 50);
  const std::string path = Path("roundtrip.csv");
  std::string error;
  ASSERT_TRUE(WriteCsv(path, generated.dataset, /*label_column=*/true, &error))
      << error;

  const CsvReadResult result = ReadCsv(path, /*label_column=*/true);
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_EQ(result.dataset.num_points(), generated.dataset.num_points());
  EXPECT_EQ(result.dataset.num_features(), generated.dataset.num_features());
  EXPECT_EQ(result.dataset.outlier_indices(),
            generated.dataset.outlier_indices());
  for (std::size_t p = 0; p < generated.dataset.num_points(); ++p) {
    for (std::size_t f = 0; f < generated.dataset.num_features(); ++f) {
      EXPECT_DOUBLE_EQ(result.dataset.Value(p, f),
                       generated.dataset.Value(p, f));
    }
  }
  std::remove(path.c_str());
}

TEST_F(CsvTest, ReadsHeaderlessNumericFile) {
  const std::string path = Path("headerless.csv");
  WriteFile(path, "1.5,2.5,0\n3.5,4.5,1\n");
  const CsvReadResult result = ReadCsv(path);
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_EQ(result.dataset.num_points(), 2u);
  EXPECT_EQ(result.dataset.num_features(), 2u);
  EXPECT_EQ(result.dataset.outlier_indices(), (std::vector<int>{1}));
  std::remove(path.c_str());
}

TEST_F(CsvTest, SkipsHeaderRow) {
  const std::string path = Path("header.csv");
  WriteFile(path, "x,y,is_outlier\n1,2,0\n3,4,1\n");
  const CsvReadResult result = ReadCsv(path);
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_EQ(result.dataset.num_points(), 2u);
  std::remove(path.c_str());
}

TEST_F(CsvTest, NoLabelColumnMode) {
  const std::string path = Path("nolabel.csv");
  WriteFile(path, "1,2\n3,4\n");
  const CsvReadResult result = ReadCsv(path, /*label_column=*/false);
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_EQ(result.dataset.num_features(), 2u);
  EXPECT_TRUE(result.dataset.outlier_indices().empty());
  std::remove(path.c_str());
}

TEST_F(CsvTest, IgnoresBlankLines) {
  const std::string path = Path("blank.csv");
  WriteFile(path, "1,2,0\n\n   \n3,4,1\n");
  const CsvReadResult result = ReadCsv(path);
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_EQ(result.dataset.num_points(), 2u);
  std::remove(path.c_str());
}

TEST_F(CsvTest, MissingFileFails) {
  const CsvReadResult result = ReadCsv(Path("does_not_exist.csv"));
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.error.find("cannot open"), std::string::npos);
}

TEST_F(CsvTest, NonNumericDataRowFailsWithLine) {
  const std::string path = Path("bad.csv");
  WriteFile(path, "1,2,0\nfoo,4,1\n");
  const CsvReadResult result = ReadCsv(path);
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.error.find(":2"), std::string::npos);
  std::remove(path.c_str());
}

TEST_F(CsvTest, RaggedRowFails) {
  const std::string path = Path("ragged.csv");
  WriteFile(path, "1,2,0\n3,4,5,1\n");
  const CsvReadResult result = ReadCsv(path);
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.error.find("inconsistent"), std::string::npos);
  std::remove(path.c_str());
}

TEST_F(CsvTest, EmptyFileFails) {
  const std::string path = Path("empty.csv");
  WriteFile(path, "");
  const CsvReadResult result = ReadCsv(path);
  EXPECT_FALSE(result.ok);
  std::remove(path.c_str());
}

TEST_F(CsvTest, CrlfLineEndingsParseAsOnUnix) {
  const std::string path = Path("crlf.csv");
  WriteFile(path, "x,y,is_outlier\r\n1,2,0\r\n3,4,1\r\n");
  const CsvReadResult result = ReadCsv(path);
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_EQ(result.dataset.num_points(), 2u);
  EXPECT_EQ(result.dataset.num_features(), 2u);
  EXPECT_EQ(result.dataset.outlier_indices(), (std::vector<int>{1}));
  EXPECT_DOUBLE_EQ(result.dataset.Value(1, 1), 4.0);
  std::remove(path.c_str());
}

TEST_F(CsvTest, MissingTrailingNewlineStillReadsLastRow) {
  const std::string path = Path("notrailing.csv");
  WriteFile(path, "1,2,0\n3,4,1");  // No newline after the final row.
  const CsvReadResult result = ReadCsv(path);
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_EQ(result.dataset.num_points(), 2u);
  EXPECT_EQ(result.dataset.outlier_indices(), (std::vector<int>{1}));
  std::remove(path.c_str());
}

TEST_F(CsvTest, EmptyTrailingFieldFailsWithLineNumber) {
  const std::string path = Path("trailingcomma.csv");
  WriteFile(path, "1,2,0\n3,4,\n");  // "3,4," = empty third field.
  const CsvReadResult result = ReadCsv(path);
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.error.find(":2"), std::string::npos) << result.error;
  EXPECT_NE(result.error.find("non-numeric"), std::string::npos)
      << result.error;
  std::remove(path.c_str());
}

TEST_F(CsvTest, HeaderOnlyFileFailsAsNoDataRows) {
  const std::string path = Path("headeronly.csv");
  WriteFile(path, "x,y,is_outlier\n");
  const CsvReadResult result = ReadCsv(path);
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.error.find("no data rows"), std::string::npos)
      << result.error;
  std::remove(path.c_str());
}

TEST_F(CsvTest, LabelModeNeedsAtLeastTwoColumns) {
  const std::string path = Path("onecol.csv");
  WriteFile(path, "1\n2\n");
  const CsvReadResult result = ReadCsv(path);
  EXPECT_FALSE(result.ok);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace subex
