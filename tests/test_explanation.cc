#include "explain/explanation.h"

#include <gtest/gtest.h>

namespace subex {
namespace {

TEST(RankedSubspacesTest, AddAppends) {
  RankedSubspaces r;
  EXPECT_TRUE(r.empty());
  r.Add(Subspace({0, 1}), 2.0);
  r.Add(Subspace({1, 2}), 1.0);
  EXPECT_EQ(r.size(), 2u);
  EXPECT_EQ(r.subspaces[0], Subspace({0, 1}));
  EXPECT_EQ(r.scores[1], 1.0);
}

TEST(RankedSubspacesTest, SortDescending) {
  RankedSubspaces r;
  r.Add(Subspace({0}), 1.0);
  r.Add(Subspace({1}), 3.0);
  r.Add(Subspace({2}), 2.0);
  r.SortDescendingAndTruncate(10);
  EXPECT_EQ(r.subspaces[0], Subspace({1}));
  EXPECT_EQ(r.subspaces[1], Subspace({2}));
  EXPECT_EQ(r.subspaces[2], Subspace({0}));
  EXPECT_EQ(r.scores[0], 3.0);
}

TEST(RankedSubspacesTest, Truncates) {
  RankedSubspaces r;
  for (int i = 0; i < 5; ++i) r.Add(Subspace({i}), i);
  r.SortDescendingAndTruncate(2);
  EXPECT_EQ(r.size(), 2u);
  EXPECT_EQ(r.subspaces[0], Subspace({4}));
  EXPECT_EQ(r.subspaces[1], Subspace({3}));
}

TEST(RankedSubspacesTest, StableOnTies) {
  RankedSubspaces r;
  r.Add(Subspace({0}), 1.0);
  r.Add(Subspace({1}), 1.0);
  r.Add(Subspace({2}), 1.0);
  r.SortDescendingAndTruncate(3);
  EXPECT_EQ(r.subspaces[0], Subspace({0}));  // Insertion order preserved.
  EXPECT_EQ(r.subspaces[2], Subspace({2}));
}

TEST(RankedSubspacesTest, TruncateEmptyIsNoop) {
  RankedSubspaces r;
  r.SortDescendingAndTruncate(5);
  EXPECT_TRUE(r.empty());
}

TEST(RankedSubspacesTest, TruncateToZeroClears) {
  RankedSubspaces r;
  r.Add(Subspace({0}), 1.0);
  r.SortDescendingAndTruncate(0);
  EXPECT_TRUE(r.empty());
}

}  // namespace
}  // namespace subex
