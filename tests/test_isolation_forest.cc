#include "detect/isolation_forest.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "common/topk.h"

namespace subex {
namespace {

Dataset BlobWithOutlier(int n, std::uint64_t seed) {
  Rng rng(seed);
  Matrix m(n, 2);
  for (int p = 0; p < n - 1; ++p) {
    m(p, 0) = rng.Gaussian(0.5, 0.05);
    m(p, 1) = rng.Gaussian(0.5, 0.05);
  }
  m(n - 1, 0) = 0.99;
  m(n - 1, 1) = 0.01;
  return Dataset(std::move(m), {n - 1});
}

IsolationForest::Options FastOptions() {
  IsolationForest::Options options;
  options.num_trees = 50;
  options.subsample_size = 64;
  options.num_repetitions = 2;
  options.seed = 11;
  return options;
}

TEST(IsolationForestTest, AveragePathLengthClosedForm) {
  EXPECT_EQ(IsolationForest::AveragePathLength(0), 0.0);
  EXPECT_EQ(IsolationForest::AveragePathLength(1), 0.0);
  EXPECT_EQ(IsolationForest::AveragePathLength(2), 1.0);
  // c(n) = 2 H(n-1) - 2(n-1)/n with H via the log approximation.
  const double h255 = std::log(255.0) + 0.5772156649015329;
  EXPECT_NEAR(IsolationForest::AveragePathLength(256),
              2.0 * h255 - 2.0 * 255.0 / 256.0, 1e-12);
}

TEST(IsolationForestTest, ScoresWithinUnitInterval) {
  const Dataset d = BlobWithOutlier(200, 1);
  const IsolationForest forest(FastOptions());
  for (double s : forest.Score(d, Subspace())) {
    EXPECT_GT(s, 0.0);
    EXPECT_LT(s, 1.0);
  }
}

TEST(IsolationForestTest, OutlierNearOneInlierBelowHalf) {
  const Dataset d = BlobWithOutlier(300, 2);
  const IsolationForest forest(FastOptions());
  const std::vector<double> scores = forest.Score(d, Subspace());
  EXPECT_GT(scores[299], 0.6);
  double inlier_mean = 0.0;
  for (int p = 0; p < 299; ++p) inlier_mean += scores[p];
  inlier_mean /= 299.0;
  EXPECT_LT(inlier_mean, 0.55);
  EXPECT_EQ(TopKIndices(scores, 1).front(), 299);
}

TEST(IsolationForestTest, DeterministicPerSubspace) {
  const Dataset d = BlobWithOutlier(100, 3);
  const IsolationForest forest(FastOptions());
  EXPECT_EQ(forest.Score(d, Subspace()), forest.Score(d, Subspace()));
  EXPECT_EQ(forest.Score(d, Subspace({0})), forest.Score(d, Subspace({0})));
}

TEST(IsolationForestTest, DifferentSubspaceDifferentRandomness) {
  const Dataset d = BlobWithOutlier(100, 4);
  const IsolationForest forest(FastOptions());
  // Feature 0 and feature 1 carry differently distributed values, so the
  // scores should differ (also exercises per-subspace seed salting).
  EXPECT_NE(forest.Score(d, Subspace({0})), forest.Score(d, Subspace({1})));
}

TEST(IsolationForestTest, SeedChangesScores) {
  const Dataset d = BlobWithOutlier(100, 5);
  IsolationForest::Options a = FastOptions();
  IsolationForest::Options b = FastOptions();
  b.seed = 999;
  EXPECT_NE(IsolationForest(a).Score(d, Subspace()),
            IsolationForest(b).Score(d, Subspace()));
}

TEST(IsolationForestTest, MoreRepetitionsReduceVariance) {
  const Dataset d = BlobWithOutlier(150, 6);
  IsolationForest::Options one = FastOptions();
  one.num_repetitions = 1;
  IsolationForest::Options ten = FastOptions();
  ten.num_repetitions = 10;
  // Compare the outlier score across two different seeds: with more
  // repetitions the two runs must agree more closely.
  auto spread = [&](const IsolationForest::Options& base) {
    IsolationForest::Options o1 = base;
    o1.seed = 100;
    IsolationForest::Options o2 = base;
    o2.seed = 200;
    const double s1 = IsolationForest(o1).Score(d, Subspace())[149];
    const double s2 = IsolationForest(o2).Score(d, Subspace())[149];
    return std::fabs(s1 - s2);
  };
  EXPECT_LE(spread(ten), spread(one) + 0.02);
}

TEST(IsolationForestTest, ConstantFeatureDoesNotCrash) {
  Matrix m(50, 2);
  Rng rng(7);
  for (int p = 0; p < 50; ++p) {
    m(p, 0) = 1.0;  // Constant.
    m(p, 1) = rng.Uniform();
  }
  const Dataset d(std::move(m));
  const IsolationForest forest(FastOptions());
  for (double s : forest.Score(d, Subspace())) {
    EXPECT_TRUE(std::isfinite(s));
  }
}

TEST(IsolationForestTest, SubsampleClampedToDatasetSize) {
  const Dataset d = BlobWithOutlier(40, 8);  // Smaller than subsample 64.
  const IsolationForest forest(FastOptions());
  const std::vector<double> scores = forest.Score(d, Subspace());
  EXPECT_EQ(scores.size(), 40u);
  EXPECT_EQ(TopKIndices(scores, 1).front(), 39);
}

}  // namespace
}  // namespace subex
