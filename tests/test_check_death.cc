// Contract-violation (death) tests: the library aborts with a diagnostic
// rather than silently corrupting results when API preconditions are
// broken.

#include <gtest/gtest.h>

#include "common/check.h"
#include "common/matrix.h"
#include "data/dataset.h"
#include "data/generators.h"
#include "detect/knn.h"
#include "detect/lof.h"
#include "explain/beam.h"
#include "ml/regression_tree.h"
#include "subspace/subspace.h"

namespace subex {
namespace {

TEST(CheckDeathTest, CheckMacroAborts) {
  EXPECT_DEATH(SUBEX_CHECK(1 == 2), "SUBEX_CHECK failed");
}

TEST(CheckDeathTest, CheckMsgIncludesMessage) {
  EXPECT_DEATH(SUBEX_CHECK_MSG(false, "the reason"), "the reason");
}

TEST(CheckDeathTest, RaggedMatrixInitializer) {
  EXPECT_DEATH((Matrix{{1.0, 2.0}, {3.0}}), "ragged");
}

TEST(CheckDeathTest, AppendRowWidthMismatch) {
  Matrix m = {{1.0, 2.0}};
  const std::vector<double> bad = {1.0, 2.0, 3.0};
  EXPECT_DEATH(m.AppendRow(bad), "row width mismatch");
}

TEST(CheckDeathTest, NegativeFeatureId) {
  EXPECT_DEATH(Subspace({-1, 2}), "negative feature id");
}

TEST(CheckDeathTest, OutlierIndexOutOfRange) {
  Matrix m = {{1.0}, {2.0}};
  EXPECT_DEATH(Dataset(std::move(m), {5}), "out of range");
}

TEST(CheckDeathTest, KnnNeedsTwoPoints) {
  Matrix m = {{1.0}};
  const Dataset d(std::move(m));
  EXPECT_DEATH(ComputeKnn(d, Subspace(), 1), "at least two points");
}

TEST(CheckDeathTest, BeamRejectsBadTargetDim) {
  const SyntheticDataset d = GenerateFigure1Dataset(1, 50);
  const Lof lof(5);
  const Beam beam;
  EXPECT_DEATH(beam.Explain(d.dataset, lof, 0, 1), "SUBEX_CHECK failed");
  EXPECT_DEATH(beam.Explain(d.dataset, lof, 0, 99), "SUBEX_CHECK failed");
}

TEST(CheckDeathTest, BeamRejectsBadPoint) {
  const SyntheticDataset d = GenerateFigure1Dataset(2, 50);
  const Lof lof(5);
  const Beam beam;
  EXPECT_DEATH(beam.Explain(d.dataset, lof, -1, 2), "SUBEX_CHECK failed");
}

TEST(CheckDeathTest, TreePredictBeforeFit) {
  RegressionTree tree;
  const std::vector<double> row = {1.0};
  EXPECT_DEATH(tree.Predict(row), "Predict before Fit");
}

TEST(CheckDeathTest, TreeFitSizeMismatch) {
  Matrix x = {{1.0}, {2.0}};
  const std::vector<double> y = {1.0};
  RegressionTree tree;
  EXPECT_DEATH(tree.Fit(x, y), "SUBEX_CHECK failed");
}

}  // namespace
}  // namespace subex
