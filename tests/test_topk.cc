#include "common/topk.h"

#include <gtest/gtest.h>

#include <vector>

namespace subex {
namespace {

TEST(TopkTest, ArgsortAscending) {
  const std::vector<double> v = {3.0, 1.0, 2.0};
  EXPECT_EQ(ArgsortAscending(v), (std::vector<int>{1, 2, 0}));
}

TEST(TopkTest, ArgsortDescending) {
  const std::vector<double> v = {3.0, 1.0, 2.0};
  EXPECT_EQ(ArgsortDescending(v), (std::vector<int>{0, 2, 1}));
}

TEST(TopkTest, ArgsortStableOnTies) {
  const std::vector<double> v = {1.0, 2.0, 1.0, 2.0};
  EXPECT_EQ(ArgsortAscending(v), (std::vector<int>{0, 2, 1, 3}));
  EXPECT_EQ(ArgsortDescending(v), (std::vector<int>{1, 3, 0, 2}));
}

TEST(TopkTest, TopKBasic) {
  const std::vector<double> v = {0.5, 9.0, 3.0, 7.0};
  EXPECT_EQ(TopKIndices(v, 2), (std::vector<int>{1, 3}));
}

TEST(TopkTest, TopKClampsToSize) {
  const std::vector<double> v = {2.0, 1.0};
  EXPECT_EQ(TopKIndices(v, 10), (std::vector<int>{0, 1}));
}

TEST(TopkTest, TopKTieBreaksByIndex) {
  const std::vector<double> v = {5.0, 5.0, 5.0};
  EXPECT_EQ(TopKIndices(v, 2), (std::vector<int>{0, 1}));
}

TEST(TopkTest, BottomKBasic) {
  const std::vector<double> v = {0.5, 9.0, 3.0, 7.0};
  EXPECT_EQ(BottomKIndices(v, 2), (std::vector<int>{0, 2}));
}

TEST(TopkTest, TopKZero) {
  const std::vector<double> v = {1.0};
  EXPECT_TRUE(TopKIndices(v, 0).empty());
}

TEST(TopkTest, TopKEmptyInput) {
  const std::vector<double> v;
  EXPECT_TRUE(TopKIndices(v, 3).empty());
}

TEST(TopkTest, RanksDescending) {
  const std::vector<double> v = {0.5, 9.0, 3.0};
  EXPECT_EQ(RanksDescending(v), (std::vector<int>{2, 0, 1}));
}

}  // namespace
}  // namespace subex
